"""Round-trip, corruption and schema-version tests for the artifact store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import (
    make_high_dimensional_mixture,
    make_overlapping_binary_clusters,
)
from repro.exceptions import (
    ArtifactCorruptedError,
    PersistenceError,
    SchemaVersionError,
    ValidationError,
)
from repro.persistence import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    load_framework,
    load_model,
    load_supervision,
    read_manifest,
    save_framework,
    save_model,
    save_supervision,
)
from repro.rbm import BernoulliRBM, GaussianRBM
from repro.supervision.local_supervision import LocalSupervision

ALL_MODELS = ("rbm", "sls_rbm", "grbm", "sls_grbm")


def _dataset_for(model: str) -> np.ndarray:
    if model in ("rbm", "sls_rbm"):
        data, _ = make_overlapping_binary_clusters(
            70, 10, 3, flip_probability=0.1, random_state=0
        )
    else:
        data, _ = make_high_dimensional_mixture(
            70, 16, 3, n_informative=8, random_state=0
        )
    return data


def _fitted_framework(model: str) -> tuple[SelfLearningEncodingFramework, np.ndarray]:
    preprocessing = "median_binarize" if model in ("rbm", "sls_rbm") else "standardize"
    config = FrameworkConfig(
        model=model,
        preprocessing=preprocessing,
        supervision_preprocessing="standardize",
        n_hidden=6,
        n_epochs=3,
        batch_size=16,
        random_state=0,
    )
    data = _dataset_for(model)
    framework = SelfLearningEncodingFramework(config, n_clusters=3)
    framework.fit(data)
    return framework, data


class TestFrameworkRoundTrip:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_transform_is_bitwise_identical(self, model, tmp_path):
        framework, data = _fitted_framework(model)
        bundle = save_framework(framework, tmp_path / "bundle")
        restored = load_framework(bundle)
        assert np.array_equal(framework.transform(data), restored.transform(data))

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_config_round_trip(self, model, tmp_path):
        framework, _ = _fitted_framework(model)
        restored = load_framework(save_framework(framework, tmp_path / "bundle"))
        assert restored.config == framework.config
        assert restored.n_clusters == framework.n_clusters
        assert restored.is_fitted

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_history_round_trip(self, model, tmp_path):
        framework, _ = _fitted_framework(model)
        restored = load_framework(save_framework(framework, tmp_path / "bundle"))
        assert (
            restored.model_.training_history_ == framework.model_.training_history_
        )

    @pytest.mark.parametrize("model", ("sls_rbm", "sls_grbm"))
    def test_supervision_round_trip(self, model, tmp_path):
        framework, _ = _fitted_framework(model)
        assert framework.supervision_ is not None
        restored = load_framework(save_framework(framework, tmp_path / "bundle"))
        assert restored.supervision_ is not None
        assert np.array_equal(restored.supervision_.labels, framework.supervision_.labels)
        assert restored.supervision_.metadata == framework.supervision_.metadata
        model_ = restored.model_
        assert model_.has_supervision
        assert np.array_equal(
            model_._supervision_visible, framework.model_._supervision_visible
        )
        for cid, members in framework.model_._supervision_index_sets.items():
            assert np.array_equal(model_._supervision_index_sets[cid], members)

    @pytest.mark.parametrize("model", ("sls_rbm", "sls_grbm"))
    def test_loaded_sls_model_can_continue_training(self, model, tmp_path):
        framework, data = _fitted_framework(model)
        restored = load_framework(save_framework(framework, tmp_path / "bundle"))
        error = restored.model_.partial_fit(restored.preprocess(data))
        assert np.isfinite(error)

    def test_unfitted_framework_rejected(self, tmp_path):
        framework = SelfLearningEncodingFramework(FrameworkConfig(), n_clusters=3)
        with pytest.raises(Exception):
            save_framework(framework, tmp_path / "bundle")


class TestModelRoundTrip:
    def test_bernoulli_round_trip(self, binary_dataset, tmp_path):
        data, _ = binary_dataset
        model = BernoulliRBM(8, n_epochs=3, random_state=0).fit(data)
        restored = load_model(save_model(model, tmp_path / "model"))
        assert isinstance(restored, BernoulliRBM)
        assert np.array_equal(model.transform(data), restored.transform(data))
        assert np.array_equal(model.reconstruct(data), restored.reconstruct(data))
        assert restored.training_history_ == model.training_history_
        assert restored.get_config() == model.get_config()

    def test_gaussian_round_trip(self, blobs_dataset, tmp_path):
        data, _ = blobs_dataset
        model = GaussianRBM(8, n_epochs=3, random_state=0).fit(data)
        restored = load_model(save_model(model, tmp_path / "model"))
        assert np.array_equal(model.transform(data), restored.transform(data))

    def test_momentum_velocities_round_trip(self, binary_dataset, tmp_path):
        data, _ = binary_dataset
        model = BernoulliRBM(4, n_epochs=2, momentum=0.5, random_state=0).fit(data)
        restored = load_model(save_model(model, tmp_path / "model"))
        assert np.array_equal(model._velocity_weights, restored._velocity_weights)

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(Exception):
            save_model(BernoulliRBM(4), tmp_path / "model")

    def test_set_state_shape_mismatch(self, binary_dataset):
        data, _ = binary_dataset
        model = BernoulliRBM(8, n_epochs=2, random_state=0).fit(data)
        state = model.get_state()
        other = BernoulliRBM(5)
        with pytest.raises(ValidationError):
            other.set_state(state)

    def test_legacy_set_params_state_dict_shim(self, binary_dataset):
        # The pre-protocol persistence signature still restores state, with a
        # DeprecationWarning pointing at set_state.
        data, _ = binary_dataset
        model = BernoulliRBM(6, n_epochs=2, random_state=0).fit(data)
        other = BernoulliRBM(6)
        with pytest.warns(DeprecationWarning, match="set_state"):
            other.set_params(model.get_state())
        assert np.array_equal(model.transform(data), other.transform(data))


class TestSupervisionRoundTrip:
    def test_round_trip(self, simple_supervision, tmp_path):
        bundle = save_supervision(simple_supervision, tmp_path / "sup")
        restored = load_supervision(bundle)
        assert np.array_equal(restored.labels, simple_supervision.labels)
        assert restored.n_samples == simple_supervision.n_samples
        assert restored.metadata == simple_supervision.metadata

    def test_rejects_non_supervision(self, tmp_path):
        with pytest.raises(ValidationError):
            save_supervision("not a supervision", tmp_path / "sup")


class TestCorruptionAndVersioning:
    @pytest.fixture
    def bundle(self, tmp_path):
        framework, _ = _fitted_framework("sls_rbm")
        return save_framework(framework, tmp_path / "bundle")

    def test_corrupted_arrays_detected(self, bundle):
        arrays_path = bundle / ARRAYS_NAME
        payload = bytearray(arrays_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        arrays_path.write_bytes(bytes(payload))
        with pytest.raises(ArtifactCorruptedError):
            load_framework(bundle)

    def test_missing_arrays_detected(self, bundle):
        (bundle / ARRAYS_NAME).unlink()
        with pytest.raises(ArtifactCorruptedError):
            load_framework(bundle)

    def test_schema_version_mismatch(self, bundle):
        manifest_path = bundle / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaVersionError):
            load_framework(bundle)

    def test_undecodable_manifest(self, bundle):
        (bundle / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ArtifactCorruptedError):
            read_manifest(bundle)

    def test_foreign_manifest_rejected(self, bundle):
        (bundle / MANIFEST_NAME).write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ArtifactCorruptedError):
            read_manifest(bundle)

    def test_missing_bundle(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_framework(tmp_path / "nowhere")

    def test_kind_mismatch(self, bundle, binary_dataset, tmp_path):
        with pytest.raises(PersistenceError):
            load_model(bundle)
        data, _ = binary_dataset
        model_bundle = save_model(
            BernoulliRBM(4, n_epochs=2, random_state=0).fit(data), tmp_path / "model"
        )
        with pytest.raises(PersistenceError):
            load_framework(model_bundle)
        with pytest.raises(PersistenceError):
            load_supervision(model_bundle)


class TestFrameworkConfigDict:
    def test_round_trip(self):
        config = FrameworkConfig(
            model="sls_grbm",
            clusterers=("kmeans", "ap"),
            extra={"supervision_learning_rate": 1e-2},
        )
        assert FrameworkConfig.from_dict(config.as_dict()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            FrameworkConfig.from_dict({"model": "rbm", "bogus": 1})


class TestSchemaV2AndBackCompat:
    """Schema v2 spec entry + v1 bundles staying loadable."""

    @pytest.fixture
    def bundle(self, tmp_path):
        framework, data = _fitted_framework("sls_rbm")
        path = save_framework(framework, tmp_path / "bundle")
        return framework, data, path

    def test_manifest_carries_buildable_spec(self, bundle):
        from repro import registry

        framework, data, path = bundle
        manifest = read_manifest(path)
        assert manifest["schema_version"] == SCHEMA_VERSION
        spec = manifest["spec"]
        rebuilt = registry.build(spec)
        assert rebuilt.config == framework.config
        assert rebuilt.n_clusters == framework.n_clusters

    def test_spec_round_trips_bit_identical(self, bundle, tmp_path):
        """build(spec) -> fit -> save -> load -> re-build(spec of load):
        encodings stay bit-identical through the whole cycle."""
        from repro import registry

        framework, data, path = bundle
        loaded = load_framework(path)
        assert np.array_equal(framework.transform(data), loaded.transform(data))
        # Rebuild from the loaded artifact's spec, restore the same state
        # through a second save/load, and compare again.
        second = save_framework(loaded, tmp_path / "second")
        reloaded = load_framework(second)
        assert np.array_equal(framework.transform(data), reloaded.transform(data))

    def test_v1_bundle_still_loads(self, bundle):
        framework, data, path = bundle
        manifest_path = path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 1
        del manifest["spec"]
        manifest_path.write_text(json.dumps(manifest))
        loaded = load_framework(path)
        assert np.array_equal(framework.transform(data), loaded.transform(data))

    def test_v1_model_bundle_still_loads(self, binary_dataset, tmp_path):
        data, _ = binary_dataset
        model = BernoulliRBM(6, n_epochs=2, random_state=0).fit(data)
        path = save_model(model, tmp_path / "model")
        manifest_path = path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 1
        del manifest["spec"]
        manifest_path.write_text(json.dumps(manifest))
        loaded = load_model(path)
        assert np.array_equal(model.transform(data), loaded.transform(data))

    def test_unbuildable_spec_detected(self, bundle):
        from repro.exceptions import ArtifactCorruptedError

        _, _, path = bundle
        manifest_path = path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["spec"]["type"] = "no_such_component"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptedError):
            load_framework(path)

    def test_model_manifest_spec_matches_config(self, binary_dataset, tmp_path):
        data, _ = binary_dataset
        model = BernoulliRBM(6, n_epochs=2, random_state=0).fit(data)
        path = save_model(model, tmp_path / "model")
        manifest = read_manifest(path)
        assert manifest["spec"] == {
            "kind": "model", "type": "rbm", "params": model.get_config()
        }


    def test_foreign_spec_param_detected(self, bundle):
        from repro.exceptions import ArtifactCorruptedError

        _, _, path = bundle
        manifest_path = path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["spec"]["params"]["bogus_future_knob"] = 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptedError):
            load_framework(path)
