"""Tests for partition alignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.supervision.alignment import align_partitions, align_to_reference


class TestAlignToReference:
    def test_permuted_labels_are_mapped_back(self):
        reference = np.array([0, 0, 1, 1, 2, 2])
        permuted = np.array([2, 2, 0, 0, 1, 1])
        aligned = align_to_reference(reference, permuted)
        np.testing.assert_array_equal(aligned, reference)

    def test_partial_overlap(self):
        reference = np.array([0, 0, 0, 1, 1, 1])
        partition = np.array([5, 5, 7, 7, 7, 7])
        aligned = align_to_reference(reference, partition)
        # Cluster 5 overlaps class 0 most, cluster 7 overlaps class 1 most.
        np.testing.assert_array_equal(aligned, [0, 0, 1, 1, 1, 1])

    def test_extra_clusters_get_fresh_labels(self):
        reference = np.array([0, 0, 1, 1])
        partition = np.array([0, 1, 2, 3])
        aligned = align_to_reference(reference, partition)
        # No two source clusters may be merged.
        assert len(np.unique(aligned)) == 4

    def test_alignment_preserves_partition_structure(self):
        rng = np.random.default_rng(0)
        reference = rng.integers(0, 3, 50)
        partition = rng.integers(0, 4, 50)
        aligned = align_to_reference(reference, partition)
        # Same-cluster relations must be preserved exactly.
        for i in range(50):
            for j in range(50):
                assert (partition[i] == partition[j]) == (aligned[i] == aligned[j])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            align_to_reference([0, 1], [0, 1, 2])


class TestAlignPartitions:
    def test_first_partition_unchanged(self):
        partitions = [np.array([0, 0, 1, 1]), np.array([1, 1, 0, 0])]
        aligned = align_partitions(partitions)
        np.testing.assert_array_equal(aligned[0], partitions[0])

    def test_all_aligned_to_first(self):
        base = np.array([0, 0, 1, 1, 2, 2])
        partitions = [base, np.array([1, 1, 2, 2, 0, 0]), np.array([2, 2, 1, 1, 0, 0])]
        aligned = align_partitions(partitions)
        for partition in aligned[1:]:
            np.testing.assert_array_equal(partition, base)

    def test_single_partition(self):
        aligned = align_partitions([np.array([0, 1, 0])])
        assert len(aligned) == 1

    def test_empty_list_raises(self):
        with pytest.raises(ValidationError):
            align_partitions([])

    def test_inconsistent_lengths_raise(self):
        with pytest.raises(ValidationError):
            align_partitions([np.array([0, 1]), np.array([0, 1, 2])])
