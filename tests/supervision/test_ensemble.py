"""Tests for the multi-clustering integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import KMeans
from repro.exceptions import ValidationError
from repro.supervision.ensemble import MultiClusteringIntegration
from repro.supervision.local_supervision import LocalSupervision


class TestMultiClusteringIntegration:
    def test_easy_data_gives_high_coverage(self, blobs_dataset):
        data, labels = blobs_dataset
        integration = MultiClusteringIntegration(
            3, clusterers=("kmeans", "agglomerative"), random_state=0
        )
        supervision = integration.fit_supervision(data)
        assert isinstance(supervision, LocalSupervision)
        assert supervision.coverage > 0.9
        assert supervision.n_clusters == 3

    def test_supervision_is_consistent_with_ground_truth_on_easy_data(
        self, blobs_dataset
    ):
        data, labels = blobs_dataset
        integration = MultiClusteringIntegration(
            3, clusterers=("kmeans", "agglomerative"), random_state=0
        )
        supervision = integration.fit_supervision(data)
        covered = supervision.covered_indices
        # On well-separated blobs, the credible clusters should be pure.
        from repro.metrics import purity_score

        assert purity_score(labels[covered], supervision.labels[covered]) > 0.95

    def test_default_clusterers_are_paper_trio(self, blobs_dataset):
        data, _ = blobs_dataset
        integration = MultiClusteringIntegration(3, random_state=0).fit(data)
        names = integration.supervision_.metadata["clusterers"]
        assert names == ["DP", "K-means", "AP"]

    def test_partitions_recorded(self, blobs_dataset):
        data, _ = blobs_dataset
        integration = MultiClusteringIntegration(
            3, clusterers=("kmeans", "dp"), random_state=0
        ).fit(data)
        assert len(integration.partitions_) == 2
        assert len(integration.aligned_partitions_) == 2
        assert 0.0 <= integration.agreement_rate_ <= 1.0

    def test_majority_voting_covers_at_least_unanimous(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        unanimous = MultiClusteringIntegration(
            3, clusterers=("kmeans", "dp", "agglomerative"), voting="unanimous",
            random_state=0,
        ).fit_supervision(data)
        majority = MultiClusteringIntegration(
            3, clusterers=("kmeans", "dp", "agglomerative"), voting="majority",
            random_state=0,
        ).fit_supervision(data)
        assert majority.coverage >= unanimous.coverage

    def test_accepts_estimator_instances(self, blobs_dataset):
        data, _ = blobs_dataset
        integration = MultiClusteringIntegration(
            3,
            clusterers=(KMeans(3, random_state=0), KMeans(3, random_state=1)),
            random_state=0,
        )
        supervision = integration.fit_supervision(data)
        assert supervision.n_samples == data.shape[0]

    def test_small_cluster_dropped(self):
        # Construct partitions where one consensus cluster has a single member.
        integration = MultiClusteringIntegration(2, min_cluster_size=2)
        labels = np.array([0, 0, 0, 1, -1, -1])
        labels[3] = 5  # singleton cluster 5
        cleaned = integration._drop_small_clusters(labels)
        assert 5 not in cleaned

    def test_invalid_voting(self):
        with pytest.raises(ValidationError):
            MultiClusteringIntegration(2, voting="plurality")

    def test_empty_clusterers(self):
        with pytest.raises(ValidationError):
            MultiClusteringIntegration(2, clusterers=())

    def test_reproducible(self, blobs_dataset):
        data, _ = blobs_dataset
        a = MultiClusteringIntegration(
            3, clusterers=("kmeans", "dp"), random_state=3
        ).fit_supervision(data)
        b = MultiClusteringIntegration(
            3, clusterers=("kmeans", "dp"), random_state=3
        ).fit_supervision(data)
        np.testing.assert_array_equal(a.labels, b.labels)
