"""Tests for unanimous and majority voting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.supervision.voting import agreement_mask, majority_vote, unanimous_vote


class TestUnanimousVote:
    def test_full_agreement(self):
        partition = np.array([0, 0, 1, 1])
        labels, mask = unanimous_vote([partition, partition.copy(), partition.copy()])
        np.testing.assert_array_equal(labels, partition)
        assert mask.all()

    def test_partial_agreement(self):
        p1 = np.array([0, 0, 1, 1])
        p2 = np.array([0, 1, 1, 1])
        labels, mask = unanimous_vote([p1, p2])
        np.testing.assert_array_equal(mask, [True, False, True, True])
        np.testing.assert_array_equal(labels, [0, -1, 1, 1])

    def test_no_agreement(self):
        p1 = np.array([0, 0])
        p2 = np.array([1, 1])
        labels, mask = unanimous_vote([p1, p2])
        assert not mask.any()
        assert np.all(labels == -1)

    def test_single_partition_agrees_with_itself(self):
        p = np.array([3, 1, 2])
        labels, mask = unanimous_vote([p])
        assert mask.all()
        np.testing.assert_array_equal(labels, p)

    def test_empty_list_raises(self):
        with pytest.raises(ValidationError):
            unanimous_vote([])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            unanimous_vote([np.array([0, 1]), np.array([0, 1, 2])])

    @given(
        st.integers(2, 30).flatmap(
            lambda n: st.lists(
                st.lists(st.integers(0, 3), min_size=n, max_size=n),
                min_size=1,
                max_size=4,
            )
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_consensus_labels_match_every_partition(self, partitions):
        partitions = [np.array(p) for p in partitions]
        labels, mask = unanimous_vote(partitions)
        for partition in partitions:
            np.testing.assert_array_equal(labels[mask], partition[mask])
        assert np.all(labels[~mask] == -1)


class TestMajorityVote:
    def test_two_out_of_three(self):
        p1 = np.array([0, 0, 1, 1])
        p2 = np.array([0, 0, 1, 0])
        p3 = np.array([0, 1, 1, 1])
        labels, mask = majority_vote([p1, p2, p3])
        np.testing.assert_array_equal(labels, [0, 0, 1, 1])
        assert mask.all()

    def test_strict_threshold_drops_ties(self):
        p1 = np.array([0, 0])
        p2 = np.array([1, 0])
        labels, mask = majority_vote([p1, p2], min_agreement=0.5)
        # 1/2 agreement is not strictly greater than 0.5 -> dropped.
        assert labels[0] == -1 and not mask[0]
        assert labels[1] == 0 and mask[1]

    def test_full_agreement_always_kept(self):
        p = np.array([2, 2, 2])
        labels, mask = majority_vote([p, p.copy()], min_agreement=0.99)
        assert mask.all()

    def test_majority_is_superset_of_unanimous(self):
        rng = np.random.default_rng(0)
        partitions = [rng.integers(0, 3, 40) for _ in range(3)]
        _, unanimous_mask = unanimous_vote(partitions)
        _, majority_mask = majority_vote(partitions)
        assert np.all(majority_mask[unanimous_mask])

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            majority_vote([np.array([0, 1])], min_agreement=0.0)
        with pytest.raises(ValidationError):
            majority_vote([np.array([0, 1])], min_agreement=1.5)


class TestAgreementMask:
    def test_matches_unanimous_vote(self):
        rng = np.random.default_rng(1)
        partitions = [rng.integers(0, 2, 20) for _ in range(3)]
        mask = agreement_mask(partitions)
        _, expected = unanimous_vote(partitions)
        np.testing.assert_array_equal(mask, expected)
