"""Tests for the LocalSupervision value object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SupervisionError
from repro.supervision.local_supervision import LocalSupervision


class TestConstruction:
    def test_from_labels(self):
        supervision = LocalSupervision.from_labels([0, 0, -1, 1, 1])
        assert supervision.n_samples == 5
        assert supervision.n_clusters == 2

    def test_from_full_partition(self):
        supervision = LocalSupervision.from_full_partition([0, 1, 2, 0])
        assert supervision.coverage == 1.0

    def test_from_full_partition_rejects_negative(self):
        with pytest.raises(SupervisionError):
            LocalSupervision.from_full_partition([0, -1, 1])

    def test_all_uncovered_rejected(self):
        with pytest.raises(SupervisionError, match="covers no instance"):
            LocalSupervision.from_labels([-1, -1, -1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SupervisionError):
            LocalSupervision(labels=np.array([0, 1]), n_samples=3)

    def test_2d_labels_rejected(self):
        with pytest.raises(SupervisionError):
            LocalSupervision(labels=np.zeros((2, 2), dtype=int), n_samples=2)


class TestViews:
    def test_mask_and_indices(self, simple_supervision):
        np.testing.assert_array_equal(
            simple_supervision.covered_indices, [0, 1, 2, 5, 6, 7]
        )
        assert simple_supervision.mask.sum() == 6

    def test_coverage(self, simple_supervision):
        assert simple_supervision.coverage == pytest.approx(0.6)

    def test_cluster_ids(self, simple_supervision):
        np.testing.assert_array_equal(simple_supervision.cluster_ids, [0, 1])

    def test_members(self, simple_supervision):
        np.testing.assert_array_equal(simple_supervision.members(1), [5, 6, 7])

    def test_members_negative_id_rejected(self, simple_supervision):
        with pytest.raises(SupervisionError):
            simple_supervision.members(-1)

    def test_members_empty_cluster_rejected(self, simple_supervision):
        with pytest.raises(SupervisionError):
            simple_supervision.members(9)

    def test_cluster_index_sets(self, simple_supervision):
        sets = simple_supervision.cluster_index_sets()
        assert set(sets) == {0, 1}
        np.testing.assert_array_equal(sets[0], [0, 1, 2])

    def test_cluster_sizes(self, simple_supervision):
        assert simple_supervision.cluster_sizes() == {0: 3, 1: 3}

    def test_summary(self, simple_supervision):
        summary = simple_supervision.summary()
        assert summary["n_covered"] == 6
        assert summary["n_clusters"] == 2
        assert summary["min_cluster_size"] == 3


class TestRestrictTo:
    def test_restriction_reindexes(self, simple_supervision):
        restricted = simple_supervision.restrict_to([0, 1, 5, 6])
        assert restricted.n_samples == 4
        np.testing.assert_array_equal(restricted.labels, [0, 0, 1, 1])

    def test_restriction_without_covered_instances_fails(self, simple_supervision):
        with pytest.raises(SupervisionError):
            simple_supervision.restrict_to([3, 4, 8])

    def test_restriction_requires_1d(self, simple_supervision):
        with pytest.raises(SupervisionError):
            simple_supervision.restrict_to(np.array([[0, 1]]))

    def test_metadata_flag(self, simple_supervision):
        restricted = simple_supervision.restrict_to([0, 1, 2])
        assert restricted.metadata["restricted"] is True
