"""Tests for the end-to-end SelfLearningEncodingFramework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import EncodingResult, SelfLearningEncodingFramework
from repro.datasets.synthetic import make_blobs
from repro.exceptions import NotFittedError, ValidationError
from repro.supervision.local_supervision import LocalSupervision


def _fast_config(**overrides):
    defaults = dict(
        model="sls_grbm",
        n_hidden=8,
        n_epochs=3,
        batch_size=32,
        learning_rate=0.01,
        clusterers=("kmeans", "agglomerative"),
        random_state=0,
    )
    defaults.update(overrides)
    return FrameworkConfig(**defaults)


class TestFrameworkStages:
    def test_preprocess_standardize(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        out = framework.preprocess(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_preprocess_none(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        framework = SelfLearningEncodingFramework(
            _fast_config(preprocessing="none"), n_clusters=3
        )
        np.testing.assert_array_equal(framework.preprocess(data), data)

    def test_supervision_preprocessing_falls_back(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        np.testing.assert_allclose(
            framework.preprocess_for_supervision(data), framework.preprocess(data)
        )

    def test_separate_supervision_preprocessing(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        config = _fast_config(
            model="sls_rbm",
            preprocessing="median_binarize",
            supervision_preprocessing="standardize",
            learning_rate=0.05,
        )
        framework = SelfLearningEncodingFramework(config, n_clusters=3)
        binary = framework.preprocess(data)
        real = framework.preprocess_for_supervision(data)
        assert set(np.unique(binary)) <= {0.0, 1.0}
        assert not set(np.unique(real)) <= {0.0, 1.0}

    def test_build_supervision(self, blobs_dataset):
        data, _ = blobs_dataset
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        supervision = framework.build_supervision(framework.preprocess(data))
        assert isinstance(supervision, LocalSupervision)
        assert supervision.n_samples == data.shape[0]

    def test_build_model_types(self):
        from repro.rbm import BernoulliRBM, GaussianRBM, SlsGRBM, SlsRBM

        cases = {
            "sls_grbm": SlsGRBM,
            "sls_rbm": SlsRBM,
            "grbm": GaussianRBM,
            "rbm": BernoulliRBM,
        }
        for model_name, expected in cases.items():
            preprocessing = "median_binarize" if "rbm" == model_name or model_name == "sls_rbm" else "standardize"
            framework = SelfLearningEncodingFramework(
                _fast_config(model=model_name, preprocessing=preprocessing), n_clusters=3
            )
            assert isinstance(framework.build_model(), expected)


class TestFrameworkFit:
    def test_fit_transform_shape(self, blobs_dataset):
        data, _ = blobs_dataset
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        features = framework.fit_transform(data)
        assert features.shape == (data.shape[0], 8)

    def test_supervision_built_automatically(self, blobs_dataset):
        data, _ = blobs_dataset
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        framework.fit(data)
        assert framework.supervision_ is not None
        assert framework.supervision_.coverage > 0.5

    def test_plain_model_never_builds_supervision(self, blobs_dataset):
        data, _ = blobs_dataset
        framework = SelfLearningEncodingFramework(
            _fast_config(model="grbm"), n_clusters=3
        )
        framework.fit(data)
        assert framework.supervision_ is None

    def test_explicit_supervision_is_used(self, blobs_dataset):
        data, labels = blobs_dataset
        supervision = LocalSupervision.from_full_partition(labels)
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        framework.fit(data, supervision=supervision)
        assert framework.supervision_ is supervision

    def test_transform_new_data(self, blobs_dataset):
        data, _ = blobs_dataset
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        framework.fit(data)
        new = framework.transform(data[:10])
        assert new.shape == (10, 8)

    def test_transform_before_fit_raises(self, blobs_dataset):
        data, _ = blobs_dataset
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        with pytest.raises(NotFittedError):
            framework.transform(data)

    def test_encode_returns_structured_result(self, blobs_dataset):
        data, _ = blobs_dataset
        framework = SelfLearningEncodingFramework(_fast_config(), n_clusters=3)
        result = framework.encode(data)
        assert isinstance(result, EncodingResult)
        assert result.features.shape == (data.shape[0], 8)
        assert np.isfinite(result.reconstruction_error)
        assert result.config is framework.config

    def test_invalid_config_type(self):
        with pytest.raises(ValidationError):
            SelfLearningEncodingFramework(42, n_clusters=3)

    def test_dict_config_accepted(self):
        # Registry specs describe the config as a plain dict.
        framework = SelfLearningEncodingFramework(
            {"model": "rbm", "n_hidden": 4}, n_clusters=3
        )
        assert framework.config.model == "rbm"
        assert framework.config.n_hidden == 4

    def test_unknown_dict_config_field_rejected(self):
        with pytest.raises(ValidationError):
            SelfLearningEncodingFramework({"no_such_field": 1}, n_clusters=3)

    def test_reproducibility(self, blobs_dataset):
        data, _ = blobs_dataset
        a = SelfLearningEncodingFramework(_fast_config(), n_clusters=3).fit_transform(data)
        b = SelfLearningEncodingFramework(_fast_config(), n_clusters=3).fit_transform(data)
        np.testing.assert_allclose(a, b)

    def test_degenerate_supervision_falls_back_to_unsupervised(self):
        # Two clusterers that will never unanimously agree on anything:
        # random uniform data with many clusters requested.
        data, _ = make_blobs(40, 3, 1, cluster_std=1.0, random_state=0)
        config = _fast_config(clusterers=("kmeans", "spectral"), n_epochs=2)
        framework = SelfLearningEncodingFramework(config, n_clusters=8)
        framework.fit(data)  # must not raise even if agreement is poor
        assert hasattr(framework, "model_")
