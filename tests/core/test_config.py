"""Tests for FrameworkConfig."""

from __future__ import annotations

import pytest

from repro.core.config import FrameworkConfig, GRBM_PAPER_CONFIG, RBM_PAPER_CONFIG
from repro.exceptions import ValidationError


class TestFrameworkConfig:
    def test_defaults_are_valid(self):
        config = FrameworkConfig()
        assert config.model == "sls_grbm"
        assert config.uses_supervision
        assert config.is_gaussian

    def test_paper_configs(self):
        assert GRBM_PAPER_CONFIG.eta == pytest.approx(0.4)
        assert GRBM_PAPER_CONFIG.learning_rate == pytest.approx(1e-4)
        assert RBM_PAPER_CONFIG.eta == pytest.approx(0.5)
        assert RBM_PAPER_CONFIG.preprocessing == "median_binarize"
        assert RBM_PAPER_CONFIG.supervision_preprocessing == "standardize"

    @pytest.mark.parametrize(
        "model, uses_supervision, is_gaussian",
        [
            ("sls_grbm", True, True),
            ("sls_rbm", True, False),
            ("grbm", False, True),
            ("rbm", False, False),
        ],
    )
    def test_model_flags(self, model, uses_supervision, is_gaussian):
        config = FrameworkConfig(model=model)
        assert config.uses_supervision is uses_supervision
        assert config.is_gaussian is is_gaussian

    def test_invalid_model(self):
        with pytest.raises(ValidationError):
            FrameworkConfig(model="vae")

    def test_invalid_preprocessing(self):
        with pytest.raises(ValidationError):
            FrameworkConfig(preprocessing="whiten")

    def test_invalid_supervision_preprocessing(self):
        with pytest.raises(ValidationError):
            FrameworkConfig(supervision_preprocessing="whiten")

    def test_invalid_eta(self):
        with pytest.raises(ValidationError):
            FrameworkConfig(eta=0.0)
        with pytest.raises(ValidationError):
            FrameworkConfig(eta=1.0)

    def test_invalid_voting(self):
        with pytest.raises(ValidationError):
            FrameworkConfig(voting="random")

    def test_invalid_learning_rate(self):
        with pytest.raises(ValidationError):
            FrameworkConfig(learning_rate=0.0)

    def test_invalid_integers(self):
        with pytest.raises(ValidationError):
            FrameworkConfig(n_hidden=0)
        with pytest.raises(ValidationError):
            FrameworkConfig(n_epochs=-1)

    def test_empty_clusterers(self):
        with pytest.raises(ValidationError):
            FrameworkConfig(clusterers=())

    def test_with_overrides(self):
        config = FrameworkConfig(eta=0.4)
        new = config.with_overrides(eta=0.7, n_hidden=32)
        assert new.eta == 0.7 and new.n_hidden == 32
        assert config.eta == 0.4  # original unchanged

    def test_as_dict_round_trip(self):
        config = FrameworkConfig(model="sls_rbm", n_hidden=10)
        rebuilt = FrameworkConfig(**{
            key: (tuple(value) if key == "clusterers" else value)
            for key, value in config.as_dict().items()
        })
        assert rebuilt == config

    def test_frozen(self):
        config = FrameworkConfig()
        with pytest.raises(AttributeError):
            config.eta = 0.9  # type: ignore[misc]
