"""Tests for the ClusteringPipeline evaluation cell."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.core.pipeline import ClusteringPipeline, PipelineResult
from repro.datasets.base import Dataset


@pytest.fixture
def small_dataset(blobs_dataset):
    data, labels = blobs_dataset
    return Dataset("blobs", "BL", data, labels)


def _framework(model="sls_grbm", **overrides):
    defaults = dict(
        model=model,
        n_hidden=8,
        n_epochs=3,
        batch_size=32,
        learning_rate=0.01,
        clusterers=("kmeans", "agglomerative"),
        random_state=0,
    )
    defaults.update(overrides)
    return SelfLearningEncodingFramework(FrameworkConfig(**defaults), n_clusters=3)


class TestAlgorithmNaming:
    def test_raw_clusterer_names(self):
        assert ClusteringPipeline("dp", n_clusters=3).algorithm_name == "DP"
        assert ClusteringPipeline("kmeans", n_clusters=3).algorithm_name == "K-means"
        assert ClusteringPipeline("ap", n_clusters=3).algorithm_name == "AP"

    def test_combined_names(self):
        assert (
            ClusteringPipeline("dp", framework=_framework("sls_grbm"), n_clusters=3).algorithm_name
            == "DP+slsGRBM"
        )
        assert (
            ClusteringPipeline("kmeans", framework=_framework("grbm"), n_clusters=3).algorithm_name
            == "K-means+GRBM"
        )
        assert (
            ClusteringPipeline(
                "ap",
                framework=_framework("sls_rbm", preprocessing="median_binarize"),
                n_clusters=3,
            ).algorithm_name
            == "AP+slsRBM"
        )


class TestPipelineRun:
    def test_raw_pipeline(self, small_dataset):
        result = ClusteringPipeline("kmeans", n_clusters=3, random_state=0).run(
            small_dataset
        )
        assert isinstance(result, PipelineResult)
        assert result.dataset == "BL"
        assert result.labels.shape == (small_dataset.n_samples,)
        assert result.report.accuracy > 0.9  # easy blobs

    def test_framework_pipeline(self, small_dataset):
        pipeline = ClusteringPipeline(
            "kmeans", framework=_framework(), n_clusters=3, random_state=0
        )
        result = pipeline.run(small_dataset)
        assert 0.0 <= result.report.accuracy <= 1.0
        assert result.algorithm == "K-means+slsGRBM"

    def test_dp_pipeline(self, small_dataset):
        result = ClusteringPipeline("dp", n_clusters=3).run(small_dataset)
        assert result.report.accuracy > 0.8

    def test_report_contains_all_metrics(self, small_dataset):
        result = ClusteringPipeline("kmeans", n_clusters=3).run(small_dataset)
        assert set(result.report.as_dict()) == {
            "accuracy",
            "purity",
            "rand",
            "adjusted_rand",
            "fmi",
            "nmi",
        }
