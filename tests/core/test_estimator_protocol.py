"""Shared conformance suite: every registered estimator obeys the protocol.

Parametrized over every public component in the registry — the six
clusterers, the four RBM variants, the preprocessing transformers, the
encoding framework and both pipelines — checking the contract promised by
:mod:`repro.core.estimator`:

* ``build(spec)`` is equivalent to direct construction;
* ``get_params`` / ``set_params`` round-trip;
* ``clone()`` copies parameters but not fitted state;
* fitted-only access raises :class:`NotFittedError` before ``fit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import pytest

from repro import registry
from repro.datasets.synthetic import make_blobs, make_overlapping_binary_clusters
from repro.exceptions import NotFittedError, ValidationError

BLOBS, _ = make_blobs(60, 5, 3, cluster_std=0.6, center_spread=6.0, random_state=7)
BINARY, _ = make_overlapping_binary_clusters(
    60, 8, 2, flip_probability=0.1, random_state=3
)

_RBM_PARAMS = {"n_hidden": 4, "n_epochs": 2, "batch_size": 32, "random_state": 0}
_FRAMEWORK_CONFIG = {
    "model": "sls_rbm",
    "n_hidden": 4,
    "n_epochs": 2,
    "batch_size": 32,
    "preprocessing": "median_binarize",
    "supervision_preprocessing": "standardize",
    "clusterers": ["kmeans", "agglomerative"],
    "random_state": 0,
}


@dataclass
class Case:
    """One estimator under test: its spec, fit data and fitted accessor."""

    spec: dict
    data: np.ndarray = field(default_factory=lambda: BLOBS)
    #: runs the estimator's fit path (returns nothing)
    fit: Callable = lambda est, data: est.fit(data)
    #: touches fitted-only state (must raise NotFittedError before fit)
    fitted_access: Callable = lambda est, data: est.transform(data)
    #: a constructor parameter safe to change through set_params, and a value
    mutable_param: tuple | None = None


CASES = {
    "clusterer/kmeans": Case(
        spec={"kind": "clusterer", "type": "kmeans",
              "params": {"n_clusters": 3, "random_state": 0}},
        fitted_access=lambda est, data: est.n_clusters_found_,
        mutable_param=("n_init", 3),
    ),
    "clusterer/minibatch_kmeans": Case(
        spec={"kind": "clusterer", "type": "minibatch_kmeans",
              "params": {"n_clusters": 3, "random_state": 0, "max_iter": 10}},
        fitted_access=lambda est, data: est.n_clusters_found_,
        mutable_param=("batch_size", 64),
    ),
    "clusterer/ap": Case(
        spec={"kind": "clusterer", "type": "ap",
              "params": {"random_state": 0, "max_iter": 60}},
        fitted_access=lambda est, data: est.n_clusters_found_,
        mutable_param=("damping", 0.8),
    ),
    "clusterer/dp": Case(
        spec={"kind": "clusterer", "type": "dp", "params": {"n_clusters": 3}},
        fitted_access=lambda est, data: est.n_clusters_found_,
        mutable_param=("dc_percentile", 3.0),
    ),
    "clusterer/agglomerative": Case(
        spec={"kind": "clusterer", "type": "agglomerative",
              "params": {"n_clusters": 3}},
        fitted_access=lambda est, data: est.n_clusters_found_,
        mutable_param=("linkage", "average"),
    ),
    "clusterer/spectral": Case(
        spec={"kind": "clusterer", "type": "spectral",
              "params": {"n_clusters": 3, "random_state": 0}},
        fitted_access=lambda est, data: est.n_clusters_found_,
        mutable_param=("n_neighbors", 5),
    ),
    "model/rbm": Case(
        spec={"kind": "model", "type": "rbm", "params": dict(_RBM_PARAMS)},
        data=BINARY,
        mutable_param=("learning_rate", 0.01),
    ),
    "model/grbm": Case(
        spec={"kind": "model", "type": "grbm", "params": dict(_RBM_PARAMS)},
        mutable_param=("momentum", 0.5),
    ),
    "model/sls_rbm": Case(
        spec={"kind": "model", "type": "sls_rbm",
              "params": {**_RBM_PARAMS, "eta": 0.5}},
        data=BINARY,
        mutable_param=("eta", 0.3),
    ),
    "model/sls_grbm": Case(
        spec={"kind": "model", "type": "sls_grbm",
              "params": {**_RBM_PARAMS, "eta": 0.4}},
        mutable_param=("supervision_grad_clip", 0.5),
    ),
    "preprocessor/standardize": Case(
        spec={"kind": "preprocessor", "type": "standardize"},
        mutable_param=("epsilon", 1e-6),
    ),
    "preprocessor/minmax": Case(
        spec={"kind": "preprocessor", "type": "minmax"},
        mutable_param=("feature_range", (0.0, 2.0)),
    ),
    "preprocessor/median_binarize": Case(
        spec={"kind": "preprocessor", "type": "median_binarize"},
    ),
    "preprocessor/identity": Case(
        spec={"kind": "preprocessor", "type": "identity"},
    ),
    "framework/framework": Case(
        spec={"kind": "framework", "type": "framework",
              "params": {"config": dict(_FRAMEWORK_CONFIG), "n_clusters": 3}},
        mutable_param=("n_clusters", 4),
    ),
    "pipeline/pipeline": Case(
        spec={"kind": "pipeline", "type": "pipeline",
              "params": {"steps": [
                  ["scale", {"kind": "preprocessor", "type": "standardize"}],
                  ["cluster", {"kind": "clusterer", "type": "kmeans",
                               "params": {"n_clusters": 3, "random_state": 0}}],
              ]}},
        fit=lambda est, data: est.fit_predict(data),
        fitted_access=lambda est, data: est.transform(data),
    ),
    "pipeline/clustering_pipeline": Case(
        spec={"kind": "pipeline", "type": "clustering_pipeline",
              "params": {"clusterer": "kmeans", "n_clusters": 3,
                         "random_state": 0}},
        fit=lambda est, data: est.fit_predict(data),
        fitted_access=lambda est, data: est._check_fitted(),
        mutable_param=("n_clusters", 4),
    ),
}

IDS = sorted(CASES)


def _case(case_id: str) -> Case:
    return CASES[case_id]


@pytest.mark.parametrize("case_id", IDS)
class TestProtocolConformance:
    def test_registry_covers_case(self, case_id):
        case = _case(case_id)
        kind, name = case_id.split("/")
        assert name in registry.available(kind)
        assert case.spec["type"] == name

    def test_build_matches_direct_construction(self, case_id):
        case = _case(case_id)
        built = registry.build(case.spec)
        cls = registry.get_class(case.spec["type"], kind=case.spec["kind"])
        assert type(built) is cls
        direct = registry.build(case.spec)
        assert registry.spec_of(built) == registry.spec_of(direct)

    def test_spec_round_trips(self, case_id):
        import json

        case = _case(case_id)
        built = registry.build(case.spec)
        spec = registry.spec_of(built)
        json.dumps(spec)  # every spec must be JSON-serialisable
        rebuilt = registry.build(spec)
        assert registry.spec_of(rebuilt) == spec

    def test_get_set_params_round_trip(self, case_id):
        case = _case(case_id)
        est = registry.build(case.spec)
        before = registry.spec_of(est)
        est.set_params(**est.get_params(deep=False))
        assert registry.spec_of(est) == before

    def test_set_params_updates_and_validates(self, case_id):
        case = _case(case_id)
        est = registry.build(case.spec)
        with pytest.raises(ValidationError):
            est.set_params(definitely_not_a_parameter=1)
        if case.mutable_param is not None:
            name, value = case.mutable_param
            est.set_params(**{name: value})
            got = est.get_params(deep=False)[name]
            if isinstance(value, tuple):
                assert tuple(got) == value
            else:
                assert got == value

    def test_clone_copies_params_not_state(self, case_id):
        case = _case(case_id)
        est = registry.build(case.spec)
        duplicate = est.clone()
        assert type(duplicate) is type(est)
        assert registry.spec_of(duplicate) == registry.spec_of(est)
        case.fit(est, case.data)
        assert est.is_fitted
        assert not duplicate.is_fitted

    def test_unfitted_access_raises(self, case_id):
        case = _case(case_id)
        est = registry.build(case.spec)
        assert not est.is_fitted
        with pytest.raises(NotFittedError):
            case.fitted_access(est, case.data)

    def test_fit_then_fitted_access_succeeds(self, case_id):
        case = _case(case_id)
        est = registry.build(case.spec)
        case.fit(est, case.data)
        assert est.is_fitted
        case.fitted_access(est, case.data)  # must no longer raise


def test_every_registered_component_has_a_case():
    """New registrations must join the conformance suite."""
    registered = {
        f"{kind}/{name}"
        for kind, names in registry.available().items()
        for name in names
    }
    assert registered == set(CASES)
