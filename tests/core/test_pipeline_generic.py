"""Tests for the N-step :class:`repro.core.pipeline.Pipeline`."""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.clustering import KMeans
from repro.core.pipeline import Pipeline
from repro.core.transformers import Standardize
from repro.exceptions import NotFittedError, ValidationError


def _framework_spec(model="rbm", n_hidden=6, preprocessing="median_binarize"):
    return {
        "kind": "framework",
        "type": "framework",
        "params": {
            "config": {
                "model": model,
                "n_hidden": n_hidden,
                "n_epochs": 2,
                "batch_size": 32,
                "preprocessing": preprocessing,
                "random_state": 0,
            },
            "n_clusters": 3,
        },
    }


class TestConstruction:
    def test_auto_naming_and_access(self):
        pipeline = Pipeline([Standardize(), KMeans(3)])
        assert list(pipeline.named_steps) == ["step0", "step1"]
        assert isinstance(pipeline[0], Standardize)
        assert isinstance(pipeline["step1"], KMeans)
        assert len(pipeline) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Pipeline([("a", Standardize()), ("a", KMeans(3))])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            Pipeline([])

    def test_non_estimator_rejected(self):
        with pytest.raises(ValidationError, match="protocol"):
            Pipeline([("f", lambda x: x)])

    def test_clusterer_mid_pipeline_rejected(self):
        with pytest.raises(ValidationError, match="transformer"):
            Pipeline([("cluster", KMeans(3)), ("scale", Standardize())])


class TestFitAndTransform:
    def test_preprocess_then_cluster(self, blobs_dataset):
        data, labels = blobs_dataset
        pipeline = Pipeline([
            ("scale", Standardize()),
            ("cluster", KMeans(3, random_state=0)),
        ])
        predicted = pipeline.fit_predict(data)
        assert predicted.shape == (data.shape[0],)
        assert pipeline.is_fitted
        assert pipeline.is_clustering
        np.testing.assert_array_equal(predicted, pipeline.labels_)

    def test_transform_uses_training_statistics(self, blobs_dataset):
        data, _ = blobs_dataset
        pipeline = Pipeline([("scale", Standardize()), ("cluster", KMeans(3, random_state=0))])
        pipeline.fit(data)
        # Transforming a subset must reuse the training mean/std, not refit.
        subset = pipeline.transform(data[:10])
        full = pipeline.transform(data)[:10]
        np.testing.assert_array_equal(subset, full)

    def test_encoder_pipeline_transform_runs_all_steps(self, blobs_dataset):
        data, _ = blobs_dataset
        pipeline = Pipeline([
            ("scale", Standardize()),
            ("encode", registry.build(_framework_spec())),
        ])
        features = pipeline.fit_transform(data)
        assert not pipeline.is_clustering
        assert features.shape == (data.shape[0], 6)

    def test_unfitted_transform_raises(self, blobs_dataset):
        data, _ = blobs_dataset
        pipeline = Pipeline([("scale", Standardize()), ("cluster", KMeans(3))])
        with pytest.raises(NotFittedError):
            pipeline.transform(data)

    def test_fit_predict_requires_clusterer_tail(self, blobs_dataset):
        data, _ = blobs_dataset
        pipeline = Pipeline([("scale", Standardize())])
        with pytest.raises(ValidationError, match="cluster assignment"):
            pipeline.fit_predict(data)

    def test_supervision_forwarded_to_framework(self, blobs_dataset):
        data, _ = blobs_dataset
        framework = registry.build(_framework_spec(model="sls_rbm"))
        pipeline = Pipeline([
            ("encode", framework),
            ("cluster", KMeans(3, random_state=0)),
        ])
        from repro.supervision.local_supervision import LocalSupervision

        labels = np.full(data.shape[0], -1)
        labels[:20] = 0
        labels[20:40] = 1
        supervision = LocalSupervision.from_labels(labels)
        pipeline.fit_predict(data, supervision=supervision)
        assert framework.supervision_ is supervision


class TestStackedEncoders:
    """Deep/stacked encoding — the scenario the old two-stage pipeline
    could not express."""

    def test_stacked_frameworks_end_to_end(self, blobs_dataset):
        data, _ = blobs_dataset
        spec = {
            "kind": "pipeline",
            "type": "pipeline",
            "params": {"steps": [
                ["first", _framework_spec(model="grbm", n_hidden=8,
                                          preprocessing="standardize")],
                ["second", _framework_spec(model="rbm", n_hidden=4,
                                           preprocessing="minmax")],
                ["cluster", {"kind": "clusterer", "type": "kmeans",
                             "params": {"n_clusters": 3, "random_state": 0}}],
            ]},
        }
        pipeline = registry.build(spec)
        predicted = pipeline.fit_predict(data)
        assert predicted.shape == (data.shape[0],)
        # The second encoder consumed the first encoder's 8-d features.
        assert pipeline["second"].model_.n_visible_ == 8
        # The whole stack round-trips through its spec.
        rebuilt = registry.build(registry.spec_of(pipeline))
        np.testing.assert_array_equal(rebuilt.fit_predict(data), predicted)

    def test_clone_deep_copies_steps(self, blobs_dataset):
        data, _ = blobs_dataset
        pipeline = Pipeline([
            ("encode", registry.build(_framework_spec())),
            ("cluster", KMeans(3, random_state=0)),
        ])
        duplicate = pipeline.clone()
        pipeline.fit_predict(data)
        assert pipeline["encode"].is_fitted
        assert not duplicate["encode"].is_fitted
        assert duplicate["encode"] is not pipeline["encode"]

    def test_deep_params_and_nested_set_params(self):
        pipeline = Pipeline([
            ("scale", Standardize()),
            ("cluster", KMeans(3, random_state=0)),
        ])
        deep = pipeline.get_params(deep=True)
        assert deep["cluster__n_clusters"] == 3
        pipeline.set_params(cluster__n_clusters=5)
        assert pipeline["cluster"].n_clusters == 5
        with pytest.raises(ValidationError):
            pipeline.set_params(nosuch__n_clusters=2)


class TestClusteringPipelineBridge:
    def test_as_pipeline(self, blobs_dataset):
        from repro.core.pipeline import ClusteringPipeline

        data, _ = blobs_dataset
        cell = ClusteringPipeline("kmeans", n_clusters=3, random_state=0)
        generic = cell.as_pipeline()
        assert isinstance(generic, Pipeline)
        np.testing.assert_array_equal(
            generic.fit_predict(data), cell.fit_predict(data)
        )
