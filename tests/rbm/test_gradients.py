"""Tests for the constrict/disperse gradients (Eq. 27-32).

The critical test is the finite-difference check: the analytic gradient of
``constrict_disperse_gradient`` must match the numerical gradient of the
reference loss ``constrict_disperse_loss_exact`` entry by entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.rbm.gradients import (
    SupervisionGradients,
    constrict_disperse_gradient,
    constrict_disperse_loss_exact,
)


def _random_problem(n_samples=12, n_visible=5, n_hidden=4, n_clusters=3, seed=0):
    rng = np.random.default_rng(seed)
    visible = rng.normal(size=(n_samples, n_visible))
    weights = 0.5 * rng.normal(size=(n_visible, n_hidden))
    hidden_bias = 0.1 * rng.normal(size=n_hidden)
    labels = rng.integers(0, n_clusters, size=n_samples)
    index_sets = {
        int(k): np.flatnonzero(labels == k)
        for k in range(n_clusters)
        if np.any(labels == k)
    }
    return visible, weights, hidden_bias, index_sets


def _numerical_gradient(visible, weights, hidden_bias, index_sets, epsilon=1e-6):
    grad_w = np.zeros_like(weights)
    for i in range(weights.shape[0]):
        for j in range(weights.shape[1]):
            perturbed = weights.copy()
            perturbed[i, j] += epsilon
            plus = constrict_disperse_loss_exact(visible, perturbed, hidden_bias, index_sets)
            perturbed[i, j] -= 2 * epsilon
            minus = constrict_disperse_loss_exact(visible, perturbed, hidden_bias, index_sets)
            grad_w[i, j] = (plus - minus) / (2 * epsilon)
    grad_b = np.zeros_like(hidden_bias)
    for j in range(hidden_bias.shape[0]):
        perturbed = hidden_bias.copy()
        perturbed[j] += epsilon
        plus = constrict_disperse_loss_exact(visible, weights, perturbed, index_sets)
        perturbed[j] -= 2 * epsilon
        minus = constrict_disperse_loss_exact(visible, weights, perturbed, index_sets)
        grad_b[j] = (plus - minus) / (2 * epsilon)
    return grad_w, grad_b


class TestFiniteDifferences:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_weight_gradient_matches_numerical(self, seed):
        visible, weights, hidden_bias, index_sets = _random_problem(seed=seed)
        analytic = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        numeric_w, numeric_b = _numerical_gradient(visible, weights, hidden_bias, index_sets)
        np.testing.assert_allclose(analytic.grad_weights, numeric_w, atol=1e-5, rtol=1e-4)
        np.testing.assert_allclose(analytic.grad_hidden_bias, numeric_b, atol=1e-5, rtol=1e-4)

    def test_two_cluster_problem(self):
        visible, weights, hidden_bias, index_sets = _random_problem(
            n_samples=8, n_clusters=2, seed=5
        )
        analytic = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        numeric_w, numeric_b = _numerical_gradient(visible, weights, hidden_bias, index_sets)
        np.testing.assert_allclose(analytic.grad_weights, numeric_w, atol=1e-5, rtol=1e-4)
        np.testing.assert_allclose(analytic.grad_hidden_bias, numeric_b, atol=1e-5, rtol=1e-4)

    def test_single_cluster_only_constrict_term(self):
        visible, weights, hidden_bias, _ = _random_problem(seed=7)
        index_sets = {0: np.arange(visible.shape[0])}
        analytic = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        numeric_w, numeric_b = _numerical_gradient(visible, weights, hidden_bias, index_sets)
        np.testing.assert_allclose(analytic.grad_weights, numeric_w, atol=1e-5, rtol=1e-4)
        np.testing.assert_allclose(analytic.grad_hidden_bias, numeric_b, atol=1e-5, rtol=1e-4)


class TestGradientStructure:
    def test_shapes(self):
        visible, weights, hidden_bias, index_sets = _random_problem()
        grads = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        assert grads.grad_weights.shape == weights.shape
        assert grads.grad_hidden_bias.shape == hidden_bias.shape

    def test_descent_direction_reduces_loss(self):
        visible, weights, hidden_bias, index_sets = _random_problem(seed=11)
        loss_before = constrict_disperse_loss_exact(
            visible, weights, hidden_bias, index_sets
        )
        grads = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        step = 1e-3
        loss_after = constrict_disperse_loss_exact(
            visible,
            weights - step * grads.grad_weights,
            hidden_bias - step * grads.grad_hidden_bias,
            index_sets,
        )
        assert loss_after < loss_before

    def test_identical_hidden_features_give_zero_pair_gradient(self):
        # With zero weights and zero bias every hidden feature is 0.5, so all
        # pairwise differences vanish and only the centre term could act; with
        # identical centres that term vanishes too.
        visible = np.random.default_rng(0).normal(size=(6, 4))
        weights = np.zeros((4, 3))
        hidden_bias = np.zeros(3)
        index_sets = {0: np.array([0, 1, 2]), 1: np.array([3, 4, 5])}
        grads = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        # Hidden features are all 0.5 -> (h_s - h_t) = 0 and (C_p - C_q) = 0.
        np.testing.assert_allclose(grads.grad_weights, 0.0, atol=1e-12)
        np.testing.assert_allclose(grads.grad_hidden_bias, 0.0, atol=1e-12)

    def test_singleton_clusters_contribute_only_to_centres(self):
        visible, weights, hidden_bias, _ = _random_problem(seed=3)
        index_sets = {0: np.array([0]), 1: np.array([1])}
        grads = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        numeric_w, numeric_b = _numerical_gradient(visible, weights, hidden_bias, index_sets)
        np.testing.assert_allclose(grads.grad_weights, numeric_w, atol=1e-5, rtol=1e-4)

    def test_validation_errors(self):
        visible, weights, hidden_bias, index_sets = _random_problem()
        with pytest.raises(ValidationError):
            constrict_disperse_gradient(visible[:, :3], weights, hidden_bias, index_sets)
        with pytest.raises(ValidationError):
            constrict_disperse_gradient(visible, weights, hidden_bias[:-1], index_sets)
        with pytest.raises(ValidationError):
            constrict_disperse_gradient(visible, weights, hidden_bias, {})
        with pytest.raises(ValidationError):
            constrict_disperse_gradient(
                visible, weights, hidden_bias, {0: np.array([], dtype=int)}
            )


class TestSupervisionGradientsContainer:
    def test_addition(self):
        a = SupervisionGradients(np.ones((2, 2)), np.ones(2))
        b = SupervisionGradients(2 * np.ones((2, 2)), 3 * np.ones(2))
        combined = a + b
        np.testing.assert_allclose(combined.grad_weights, 3.0)
        np.testing.assert_allclose(combined.grad_hidden_bias, 4.0)

    def test_scaling(self):
        a = SupervisionGradients(np.ones((2, 2)), np.ones(2))
        scaled = a.scaled(0.5)
        np.testing.assert_allclose(scaled.grad_weights, 0.5)

    def test_max_abs(self):
        a = SupervisionGradients(np.array([[1.0, -4.0]]), np.array([2.0]))
        assert a.max_abs == 4.0


class TestReferenceLoss:
    def test_loss_decreases_when_same_cluster_points_coincide(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(3, 2))
        hidden_bias = rng.normal(size=2)
        spread = rng.normal(size=(6, 3))
        tight = np.tile(rng.normal(size=(1, 3)), (6, 1))
        index_sets = {0: np.arange(3), 1: np.arange(3, 6)}
        loss_spread = constrict_disperse_loss_exact(spread, weights, hidden_bias, index_sets)
        loss_tight = constrict_disperse_loss_exact(tight, weights, hidden_bias, index_sets)
        # Identical points within each cluster -> zero constriction term and
        # zero centre separation -> loss exactly 0, below the spread case's
        # constriction-dominated value whenever that value is positive.
        assert loss_tight == pytest.approx(0.0, abs=1e-12)

    def test_empty_index_sets_rejected(self):
        with pytest.raises(ValidationError):
            constrict_disperse_loss_exact(
                np.zeros((2, 2)), np.zeros((2, 2)), np.zeros(2), {}
            )
