"""float32 training path: dtype threading, quality and persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.exceptions import ValidationError
from repro.persistence import load_framework, load_model, save_framework, save_model
from repro.rbm.grbm import GaussianRBM
from repro.rbm.rbm import BernoulliRBM
from repro.rbm.sls_grbm import SlsGRBM
from repro.supervision.local_supervision import LocalSupervision


@pytest.fixture(scope="module")
def gaussian_data():
    rng = np.random.default_rng(0)
    data = np.vstack(
        [rng.normal(c, 1.0, size=(60, 12)) for c in (-2.0, 0.0, 2.0)]
    )
    return (data - data.mean(axis=0)) / data.std(axis=0)


class TestDtypeThreading:
    def test_default_is_float64(self, gaussian_data):
        model = GaussianRBM(8, n_epochs=2, random_state=0).fit(gaussian_data)
        assert model.dtype == np.dtype(np.float64)
        assert model.weights_.dtype == np.float64
        assert model.transform(gaussian_data).dtype == np.float64

    def test_float32_parameters_and_features(self, gaussian_data):
        model = GaussianRBM(8, n_epochs=2, dtype="float32", random_state=0)
        model.fit(gaussian_data)
        assert model.weights_.dtype == np.float32
        assert model.visible_bias_.dtype == np.float32
        assert model.hidden_bias_.dtype == np.float32
        assert model.transform(gaussian_data).dtype == np.float32

    def test_float32_close_to_float64(self, gaussian_data):
        kwargs = dict(n_epochs=3, batch_size=32, random_state=0)
        features64 = GaussianRBM(8, **kwargs).fit_transform(gaussian_data)
        features32 = GaussianRBM(8, dtype="float32", **kwargs).fit_transform(
            gaussian_data
        )
        np.testing.assert_allclose(features64, features32, atol=1e-3)

    def test_sls_supervised_float32(self, gaussian_data):
        labels = np.repeat(np.arange(3), 60)
        supervision = LocalSupervision.from_labels(labels)
        model = SlsGRBM(
            8, n_epochs=2, dtype="float32", random_state=0,
            supervision_learning_rate=1e-3,
        )
        model.fit(gaussian_data, supervision=supervision)
        assert model.weights_.dtype == np.float32
        assert np.isfinite(model.supervision_loss())

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValidationError):
            BernoulliRBM(4, dtype="int32")
        with pytest.raises(ValidationError):
            FrameworkConfig(dtype="float16")


class TestDtypePersistence:
    def test_model_round_trip_preserves_dtype(self, gaussian_data, tmp_path):
        model = GaussianRBM(8, n_epochs=2, dtype="float32", random_state=0)
        model.fit(gaussian_data)
        save_model(model, tmp_path / "m32")
        loaded = load_model(tmp_path / "m32")
        assert loaded.dtype == np.dtype(np.float32)
        assert loaded.weights_.dtype == np.float32
        np.testing.assert_array_equal(
            model.transform(gaussian_data), loaded.transform(gaussian_data)
        )

    def test_framework_round_trip_preserves_dtype(self, gaussian_data, tmp_path):
        config = FrameworkConfig(
            model="grbm", n_hidden=8, n_epochs=2, dtype="float32", random_state=0
        )
        framework = SelfLearningEncodingFramework(config, n_clusters=3)
        framework.fit(gaussian_data)
        assert framework.model_.weights_.dtype == np.float32
        save_framework(framework, tmp_path / "f32")
        loaded = load_framework(tmp_path / "f32")
        assert loaded.config.dtype == "float32"
        np.testing.assert_array_equal(
            framework.transform(gaussian_data), loaded.transform(gaussian_data)
        )
