"""Tests for the slsRBM and slsGRBM models.

The central behavioural claims (from the paper) that are checked here:

* attaching a local supervision changes the learned parameters relative to a
  plain RBM/GRBM with the same seed;
* training with a supervision reduces the constrict/disperse loss of the
  hidden features (same-cluster features constrict, centres disperse);
* with no supervision attached the sls models behave exactly like their plain
  counterparts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.preprocessing import median_binarize, standardize
from repro.exceptions import ValidationError
from repro.rbm import BernoulliRBM, GaussianRBM, SlsGRBM, SlsRBM
from repro.rbm.gradients import constrict_disperse_loss_exact
from repro.supervision.local_supervision import LocalSupervision


def _supervision_from_labels(labels, coverage_rng=None):
    """Full-coverage supervision built directly from ground-truth labels."""
    return LocalSupervision.from_full_partition(np.asarray(labels, dtype=int))


def _partial_supervision(labels, fraction=0.6, seed=0):
    """Supervision covering a random subset of instances."""
    labels = np.asarray(labels, dtype=int).copy()
    rng = np.random.default_rng(seed)
    drop = rng.random(labels.shape[0]) > fraction
    labels[drop] = -1
    return LocalSupervision.from_labels(labels)


class TestSlsRBM:
    def test_without_supervision_matches_plain_rbm(self, binary_dataset):
        data, _ = binary_dataset
        plain = BernoulliRBM(8, learning_rate=0.05, n_epochs=5, random_state=1).fit(data)
        sls = SlsRBM(8, learning_rate=0.05, n_epochs=5, random_state=1).fit(
            data, supervision=None
        )
        np.testing.assert_allclose(plain.weights_, sls.weights_)
        np.testing.assert_allclose(plain.hidden_bias_, sls.hidden_bias_)

    def test_supervision_changes_parameters(self, binary_dataset):
        data, labels = binary_dataset
        supervision = _supervision_from_labels(labels)
        plain = SlsRBM(8, learning_rate=0.05, n_epochs=5, random_state=1).fit(data)
        guided = SlsRBM(8, learning_rate=0.05, n_epochs=5, random_state=1).fit(
            data, supervision=supervision
        )
        assert not np.allclose(plain.weights_, guided.weights_)

    def test_training_reduces_supervision_loss(self, binary_dataset):
        data, labels = binary_dataset
        supervision = _supervision_from_labels(labels)
        model = SlsRBM(
            16,
            learning_rate=0.05,
            supervision_learning_rate=0.05,
            n_epochs=30,
            batch_size=16,
            random_state=0,
        )
        model.fit(data, supervision=supervision)
        losses = model.training_history_.supervision_losses
        assert len(losses) == model.training_history_.n_epochs_run
        assert losses[-1] < losses[0]

    def test_partial_supervision_accepted(self, binary_dataset):
        data, labels = binary_dataset
        supervision = _partial_supervision(labels)
        model = SlsRBM(8, n_epochs=3, random_state=0).fit(data, supervision=supervision)
        assert model.has_supervision
        assert model.supervision_ is supervision

    def test_features_shape_and_range(self, binary_dataset):
        data, labels = binary_dataset
        supervision = _supervision_from_labels(labels)
        model = SlsRBM(12, n_epochs=3, random_state=0).fit(data, supervision=supervision)
        features = model.transform(data)
        assert features.shape == (data.shape[0], 12)
        assert np.all((features >= 0) & (features <= 1))

    def test_invalid_eta(self):
        with pytest.raises(ValidationError):
            SlsRBM(4, eta=0.0)
        with pytest.raises(ValidationError):
            SlsRBM(4, eta=1.0)

    def test_invalid_supervision_learning_rate(self):
        with pytest.raises(ValidationError):
            SlsRBM(4, supervision_learning_rate=-1.0)

    def test_invalid_grad_clip(self):
        with pytest.raises(ValidationError):
            SlsRBM(4, supervision_grad_clip=0.0)

    def test_supervision_length_mismatch_rejected(self, binary_dataset):
        data, _ = binary_dataset
        bad = LocalSupervision.from_full_partition(np.zeros(5, dtype=int))
        model = SlsRBM(4, n_epochs=1, random_state=0)
        with pytest.raises(ValidationError):
            model.fit(data, supervision=bad)

    def test_supervision_wrong_type_rejected(self, binary_dataset):
        data, labels = binary_dataset
        model = SlsRBM(4, n_epochs=1, random_state=0)
        with pytest.raises(ValidationError):
            model.fit(data, supervision=np.asarray(labels))

    def test_supervision_gradients_require_supervision(self, binary_dataset):
        data, _ = binary_dataset
        model = SlsRBM(4, n_epochs=1, random_state=0).fit(data)
        with pytest.raises(ValidationError):
            model.supervision_gradients()

    def test_gradient_clipping_bounds_gradients(self, binary_dataset):
        data, labels = binary_dataset
        supervision = _supervision_from_labels(labels)
        model = SlsRBM(
            8, n_epochs=1, supervision_grad_clip=0.01, random_state=0
        )
        model.initialize(data)
        model.set_supervision(data, supervision)
        grads = model.supervision_gradients()
        assert grads.max_abs <= 0.01 + 1e-12


class TestSlsGRBM:
    def test_defaults_match_paper(self):
        model = SlsGRBM(8)
        assert model.eta == pytest.approx(0.4)
        assert model.learning_rate == pytest.approx(1e-4)
        model = SlsRBM(8)
        assert model.eta == pytest.approx(0.5)

    def test_without_supervision_matches_plain_grbm(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        data = standardize(data)
        plain = GaussianRBM(8, learning_rate=0.01, n_epochs=5, random_state=2).fit(data)
        sls = SlsGRBM(8, learning_rate=0.01, n_epochs=5, random_state=2).fit(data)
        np.testing.assert_allclose(plain.weights_, sls.weights_)

    def test_supervision_constricts_hidden_features(self, hard_blobs_dataset):
        data, labels = hard_blobs_dataset
        data = standardize(data)
        supervision = _supervision_from_labels(labels)
        index_sets = supervision.cluster_index_sets()

        guided = SlsGRBM(
            16,
            eta=0.4,
            learning_rate=0.01,
            supervision_learning_rate=0.05,
            n_epochs=40,
            batch_size=32,
            random_state=0,
        ).fit(data, supervision=supervision)

        plain = GaussianRBM(
            16, learning_rate=0.01, n_epochs=40, batch_size=32, random_state=0
        ).fit(data)

        guided_loss = constrict_disperse_loss_exact(
            data, guided.weights_, guided.hidden_bias_, index_sets
        )
        plain_loss = constrict_disperse_loss_exact(
            data, plain.weights_, plain.hidden_bias_, index_sets
        )
        # The supervision explicitly minimises this loss, the plain model does
        # not, so the guided model must end up lower.
        assert guided_loss < plain_loss

    def test_supervision_loss_decreases_during_training(self, hard_blobs_dataset):
        data, labels = hard_blobs_dataset
        data = standardize(data)
        supervision = _supervision_from_labels(labels)
        model = SlsGRBM(
            16,
            learning_rate=0.01,
            supervision_learning_rate=0.05,
            n_epochs=30,
            batch_size=32,
            random_state=0,
        ).fit(data, supervision=supervision)
        losses = model.training_history_.supervision_losses
        assert losses[-1] < losses[0]

    def test_real_valued_reconstruction(self, hard_blobs_dataset):
        data, labels = hard_blobs_dataset
        data = standardize(data)
        supervision = _supervision_from_labels(labels)
        model = SlsGRBM(8, n_epochs=3, random_state=0).fit(data, supervision=supervision)
        recon = model.reconstruct(data)
        assert recon.shape == data.shape
        assert np.all(np.isfinite(recon))

    def test_binarised_data_supervision_from_real_data(self, hard_blobs_dataset):
        # The UCI experiments cluster the real-valued data but train the
        # slsRBM on the binarised version; both views share the row order, so
        # the supervision indices transfer directly.
        data, labels = hard_blobs_dataset
        binary = median_binarize(data)
        supervision = _partial_supervision(labels, fraction=0.7)
        model = SlsRBM(8, n_epochs=3, random_state=0).fit(binary, supervision=supervision)
        assert model.transform(binary).shape == (data.shape[0], 8)
