"""Tests for the RBMTrainer driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.rbm import BernoulliRBM, SlsRBM
from repro.rbm.trainer import RBMTrainer, TrainingHistory
from repro.supervision.local_supervision import LocalSupervision


class TestTrainingHistory:
    def test_final_error(self):
        history = TrainingHistory(reconstruction_errors=[0.5, 0.4, 0.3])
        assert history.final_reconstruction_error == 0.3

    def test_final_error_empty_raises_not_fitted(self):
        with pytest.raises(NotFittedError):
            TrainingHistory().final_reconstruction_error

    def test_dict_round_trip(self):
        history = TrainingHistory(
            reconstruction_errors=[0.5, 0.4],
            supervision_losses=[1.2],
            n_epochs_run=2,
            stopped_early=True,
        )
        restored = TrainingHistory.from_dict(history.to_dict())
        assert restored == history

    def test_from_dict_defaults(self):
        history = TrainingHistory.from_dict({})
        assert history.reconstruction_errors == []
        assert history.n_epochs_run == 0
        assert not history.stopped_early


class TestRBMTrainer:
    def test_records_one_error_per_epoch(self, binary_dataset):
        data, _ = binary_dataset
        model = BernoulliRBM(8, n_epochs=7, random_state=0)
        trainer = RBMTrainer(model).fit(data)
        assert trainer.history_.n_epochs_run == 7
        assert len(trainer.history_.reconstruction_errors) == 7

    def test_batch_size_larger_than_dataset(self, binary_dataset):
        data, _ = binary_dataset
        model = BernoulliRBM(4, n_epochs=2, batch_size=10_000, random_state=0)
        RBMTrainer(model).fit(data)
        assert model.is_fitted

    def test_early_stopping(self, binary_dataset):
        data, _ = binary_dataset
        model = BernoulliRBM(8, n_epochs=200, learning_rate=1e-6, random_state=0)
        trainer = RBMTrainer(model, early_stopping_tol=0.5, patience=2).fit(data)
        assert trainer.history_.stopped_early
        assert trainer.history_.n_epochs_run < 200

    def test_no_shuffle_is_deterministic_per_epoch(self, binary_dataset):
        data, _ = binary_dataset
        model_a = BernoulliRBM(4, n_epochs=3, random_state=0)
        model_b = BernoulliRBM(4, n_epochs=3, random_state=0)
        RBMTrainer(model_a, shuffle=False).fit(data)
        RBMTrainer(model_b, shuffle=False).fit(data)
        np.testing.assert_allclose(model_a.weights_, model_b.weights_)

    def test_supervision_rejected_for_plain_model(self, binary_dataset):
        data, labels = binary_dataset
        supervision = LocalSupervision.from_full_partition(labels)
        model = BernoulliRBM(4, n_epochs=1, random_state=0)
        with pytest.raises(ValidationError):
            RBMTrainer(model).fit(data, supervision=supervision)

    def test_supervision_losses_recorded_for_sls_model(self, binary_dataset):
        data, labels = binary_dataset
        supervision = LocalSupervision.from_full_partition(labels)
        model = SlsRBM(4, n_epochs=4, random_state=0)
        trainer = RBMTrainer(model).fit(data, supervision=supervision)
        assert len(trainer.history_.supervision_losses) == 4

    def test_no_supervision_losses_without_supervision(self, binary_dataset):
        data, _ = binary_dataset
        model = SlsRBM(4, n_epochs=3, random_state=0)
        trainer = RBMTrainer(model).fit(data)
        assert trainer.history_.supervision_losses == []

    def test_invalid_parameters(self, binary_dataset):
        model = BernoulliRBM(4, n_epochs=1)
        with pytest.raises(ValidationError):
            RBMTrainer(model, early_stopping_tol=-0.1)
        with pytest.raises(ValidationError):
            RBMTrainer(model, patience=0)
