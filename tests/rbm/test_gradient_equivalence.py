"""Vectorized kernels vs the kept reference loop implementations.

The fused single-matmul gradient, the closed-form centre term and the
norm-identity loss of :mod:`repro.rbm.gradients` must agree with the
loop/Gram implementations of :mod:`repro.rbm.gradients_reference` to 1e-10
on random cluster structures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.rbm.gradients import (
    build_supervision_plan,
    constrict_disperse_gradient,
    constrict_disperse_gradient_presorted,
    constrict_disperse_loss_exact,
    constrict_disperse_loss_presorted,
)
from repro.rbm.gradients_reference import (
    constrict_disperse_gradient_reference,
    constrict_disperse_loss_reference,
)

TOL = 1e-10


def _random_problem(seed, n_samples=30, n_visible=7, n_hidden=5, n_clusters=4):
    rng = np.random.default_rng(seed)
    visible = rng.normal(size=(n_samples, n_visible))
    weights = 0.6 * rng.normal(size=(n_visible, n_hidden))
    hidden_bias = 0.2 * rng.normal(size=n_hidden)
    labels = rng.integers(0, n_clusters, size=n_samples)
    index_sets = {
        int(k): np.flatnonzero(labels == k)
        for k in range(n_clusters)
        if np.any(labels == k)
    }
    return visible, weights, hidden_bias, index_sets


class TestGradientEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_clusters(self, seed):
        visible, weights, hidden_bias, index_sets = _random_problem(seed)
        fused = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        loop = constrict_disperse_gradient_reference(
            visible, weights, hidden_bias, index_sets
        )
        np.testing.assert_allclose(fused.grad_weights, loop.grad_weights, atol=TOL)
        np.testing.assert_allclose(
            fused.grad_hidden_bias, loop.grad_hidden_bias, atol=TOL
        )

    def test_many_small_clusters(self):
        visible, weights, hidden_bias, _ = _random_problem(3, n_samples=120)
        labels = np.arange(120) % 40  # 40 clusters of 3
        index_sets = {int(k): np.flatnonzero(labels == k) for k in range(40)}
        fused = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        loop = constrict_disperse_gradient_reference(
            visible, weights, hidden_bias, index_sets
        )
        np.testing.assert_allclose(fused.grad_weights, loop.grad_weights, atol=TOL)
        np.testing.assert_allclose(
            fused.grad_hidden_bias, loop.grad_hidden_bias, atol=TOL
        )

    def test_single_cluster(self):
        visible, weights, hidden_bias, _ = _random_problem(5)
        index_sets = {0: np.arange(visible.shape[0])}
        fused = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        loop = constrict_disperse_gradient_reference(
            visible, weights, hidden_bias, index_sets
        )
        np.testing.assert_allclose(fused.grad_weights, loop.grad_weights, atol=TOL)

    def test_singleton_clusters(self):
        visible, weights, hidden_bias, _ = _random_problem(7)
        index_sets = {0: np.array([0]), 1: np.array([1]), 2: np.array([2, 3, 4])}
        fused = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        loop = constrict_disperse_gradient_reference(
            visible, weights, hidden_bias, index_sets
        )
        np.testing.assert_allclose(fused.grad_weights, loop.grad_weights, atol=TOL)
        np.testing.assert_allclose(
            fused.grad_hidden_bias, loop.grad_hidden_bias, atol=TOL
        )


class TestLossEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_clusters(self, seed):
        visible, weights, hidden_bias, index_sets = _random_problem(seed)
        fused = constrict_disperse_loss_exact(visible, weights, hidden_bias, index_sets)
        loop = constrict_disperse_loss_reference(
            visible, weights, hidden_bias, index_sets
        )
        assert fused == pytest.approx(loop, abs=TOL)

    def test_single_cluster_no_dispersion(self):
        visible, weights, hidden_bias, _ = _random_problem(2)
        index_sets = {0: np.arange(visible.shape[0])}
        fused = constrict_disperse_loss_exact(visible, weights, hidden_bias, index_sets)
        loop = constrict_disperse_loss_reference(
            visible, weights, hidden_bias, index_sets
        )
        assert fused == pytest.approx(loop, abs=TOL)


class TestSupervisionPlan:
    def test_presorted_matches_wrapper(self):
        visible, weights, hidden_bias, index_sets = _random_problem(11)
        plan = build_supervision_plan(index_sets)
        sorted_visible = visible[plan.order]
        direct = constrict_disperse_gradient(visible, weights, hidden_bias, index_sets)
        presorted = constrict_disperse_gradient_presorted(
            sorted_visible, weights, hidden_bias, plan
        )
        np.testing.assert_array_equal(direct.grad_weights, presorted.grad_weights)
        loss_direct = constrict_disperse_loss_exact(
            visible, weights, hidden_bias, index_sets
        )
        loss_presorted = constrict_disperse_loss_presorted(
            sorted_visible, weights, hidden_bias, plan
        )
        assert loss_direct == loss_presorted

    def test_return_hidden_reuses_activation(self):
        visible, weights, hidden_bias, index_sets = _random_problem(13)
        plan = build_supervision_plan(index_sets)
        sorted_visible = visible[plan.order]
        grads, hidden = constrict_disperse_gradient_presorted(
            sorted_visible, weights, hidden_bias, plan, return_hidden=True
        )
        again = constrict_disperse_gradient_presorted(
            sorted_visible, weights, hidden_bias, plan, hidden=hidden
        )
        np.testing.assert_array_equal(grads.grad_weights, again.grad_weights)
        assert hidden.shape == (visible.shape[0], weights.shape[1])

    def test_plan_layout(self):
        index_sets = {2: np.array([5, 1]), 0: np.array([3]), 1: np.array([0, 2, 4])}
        plan = build_supervision_plan(index_sets)
        np.testing.assert_array_equal(plan.cluster_ids, [0, 1, 2])
        np.testing.assert_array_equal(plan.counts, [1, 3, 2])
        np.testing.assert_array_equal(plan.order, [3, 0, 2, 4, 5, 1])
        np.testing.assert_array_equal(plan.starts, [0, 1, 4])
        assert plan.n_ordered_pairs == (3 * 3 - 3) + (2 * 2 - 2)
        sets = plan.sorted_index_sets()
        np.testing.assert_array_equal(sets[1], [1, 2, 3])

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_supervision_plan({})
        with pytest.raises(ValidationError):
            build_supervision_plan({0: np.array([], dtype=int)})
