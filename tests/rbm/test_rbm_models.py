"""Tests for the BernoulliRBM and GaussianRBM baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.preprocessing import standardize
from repro.exceptions import NotFittedError, ValidationError
from repro.rbm import BernoulliRBM, GaussianRBM


@pytest.fixture
def small_rbm(binary_dataset):
    data, _ = binary_dataset
    model = BernoulliRBM(
        8, learning_rate=0.05, n_epochs=5, batch_size=16, random_state=0
    )
    model.fit(data)
    return model, data


@pytest.fixture
def small_grbm(hard_blobs_dataset):
    data, _ = hard_blobs_dataset
    data = standardize(data)
    model = GaussianRBM(
        8, learning_rate=0.01, n_epochs=5, batch_size=16, random_state=0
    )
    model.fit(data)
    return model, data


class TestConstruction:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            BernoulliRBM(0)
        with pytest.raises(ValidationError):
            BernoulliRBM(4, learning_rate=0.0)
        with pytest.raises(ValidationError):
            BernoulliRBM(4, momentum=1.0)
        with pytest.raises(ValidationError):
            BernoulliRBM(4, weight_decay=-0.1)
        with pytest.raises(ValidationError):
            GaussianRBM(4, cd_steps=0)

    def test_unfitted_transform_raises(self):
        with pytest.raises(NotFittedError):
            BernoulliRBM(4).transform(np.zeros((2, 3)))

    def test_repr_mentions_key_parameters(self):
        text = repr(BernoulliRBM(7, learning_rate=0.1))
        assert "n_hidden=7" in text


class TestBernoulliRBM:
    def test_fit_sets_parameter_shapes(self, small_rbm):
        model, data = small_rbm
        assert model.weights_.shape == (data.shape[1], 8)
        assert model.visible_bias_.shape == (data.shape[1],)
        assert model.hidden_bias_.shape == (8,)

    def test_hidden_probabilities_in_unit_interval(self, small_rbm):
        model, data = small_rbm
        hidden = model.transform(data)
        assert hidden.shape == (data.shape[0], 8)
        assert np.all(hidden >= 0.0) and np.all(hidden <= 1.0)

    def test_reconstruction_in_unit_interval(self, small_rbm):
        model, data = small_rbm
        recon = model.reconstruct(data)
        assert np.all(recon >= 0.0) and np.all(recon <= 1.0)

    def test_training_reduces_reconstruction_error(self, binary_dataset):
        data, _ = binary_dataset
        model = BernoulliRBM(
            16, learning_rate=0.1, n_epochs=30, batch_size=16, random_state=0
        )
        model.fit(data)
        errors = model.training_history_.reconstruction_errors
        assert errors[-1] < errors[0]

    def test_sampling_shapes(self, small_rbm):
        model, data = small_rbm
        hidden_probs = model.hidden_probabilities(data[:5])
        hidden_states = model.sample_hidden(hidden_probs)
        assert set(np.unique(hidden_states)) <= {0.0, 1.0}
        visible_states = model.sample_visible(hidden_states)
        assert set(np.unique(visible_states)) <= {0.0, 1.0}

    def test_free_energy_finite(self, small_rbm):
        model, data = small_rbm
        energy = model.free_energy(data)
        assert energy.shape == (data.shape[0],)
        assert np.all(np.isfinite(energy))

    def test_free_energy_prefers_training_data_over_noise(self, binary_dataset):
        data, _ = binary_dataset
        model = BernoulliRBM(
            16, learning_rate=0.1, n_epochs=40, batch_size=16, random_state=0
        )
        model.fit(data)
        rng = np.random.default_rng(0)
        noise = (rng.random(data.shape) < 0.5).astype(float)
        assert model.free_energy(data).mean() < model.free_energy(noise).mean()

    def test_pseudo_log_likelihood_is_negative(self, small_rbm):
        model, data = small_rbm
        assert model.pseudo_log_likelihood(data) < 0.0

    def test_transform_feature_mismatch_raises(self, small_rbm):
        model, _ = small_rbm
        with pytest.raises(ValidationError):
            model.transform(np.zeros((3, 99)))

    def test_score_returns_scalar(self, small_rbm):
        model, data = small_rbm
        assert isinstance(model.score(data), float)

    def test_fit_transform_equivalent_to_fit_then_transform(self, binary_dataset):
        data, _ = binary_dataset
        a = BernoulliRBM(6, n_epochs=3, random_state=1).fit_transform(data)
        model = BernoulliRBM(6, n_epochs=3, random_state=1).fit(data)
        b = model.transform(data)
        np.testing.assert_allclose(a, b)

    def test_reproducible_training(self, binary_dataset):
        data, _ = binary_dataset
        a = BernoulliRBM(6, n_epochs=4, random_state=2).fit(data).weights_
        b = BernoulliRBM(6, n_epochs=4, random_state=2).fit(data).weights_
        np.testing.assert_allclose(a, b)

    def test_momentum_and_weight_decay_run(self, binary_dataset):
        data, _ = binary_dataset
        model = BernoulliRBM(
            6, n_epochs=3, momentum=0.5, weight_decay=1e-4, random_state=0
        )
        model.fit(data)
        assert np.all(np.isfinite(model.weights_))


class TestGaussianRBM:
    def test_linear_reconstruction_is_unbounded(self, small_grbm):
        model, data = small_grbm
        recon = model.reconstruct(data)
        assert recon.shape == data.shape
        # Linear reconstruction is not squashed into [0, 1].
        assert recon.min() < 0.0 or recon.max() > 1.0

    def test_training_reduces_reconstruction_error(self, blobs_dataset):
        data, _ = blobs_dataset
        data = standardize(data)
        model = GaussianRBM(
            16, learning_rate=0.02, n_epochs=150, batch_size=16, random_state=0
        )
        model.fit(data)
        errors = model.training_history_.reconstruction_errors
        assert errors[-1] < 0.7 * errors[0]

    def test_sample_visible_is_stochastic(self, small_grbm):
        model, data = small_grbm
        hidden = model.hidden_probabilities(data[:4])
        a = model.sample_visible(hidden)
        b = model.sample_visible(hidden)
        assert not np.allclose(a, b)

    def test_free_energy_finite(self, small_grbm):
        model, data = small_grbm
        assert np.all(np.isfinite(model.free_energy(data)))

    def test_hidden_features_not_degenerate(self, small_grbm):
        model, data = small_grbm
        hidden = model.transform(data)
        # At least some variation across samples.
        assert hidden.std() > 1e-4

    def test_cd_statistics_shapes(self, small_grbm):
        model, data = small_grbm
        stats = model.contrastive_divergence(data[:10])
        assert stats.grad_weights.shape == model.weights_.shape
        assert stats.grad_visible_bias.shape == model.visible_bias_.shape
        assert stats.grad_hidden_bias.shape == model.hidden_bias_.shape
        assert stats.reconstruction_error >= 0.0

    def test_cd_multiple_steps(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        data = standardize(data)
        model = GaussianRBM(8, n_epochs=2, cd_steps=3, random_state=0)
        model.fit(data)
        assert np.all(np.isfinite(model.weights_))
