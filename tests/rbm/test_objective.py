"""Tests for the constrict/disperse loss (Eq. 13-16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.preprocessing import standardize
from repro.exceptions import ValidationError
from repro.rbm import GaussianRBM
from repro.rbm.objective import (
    cluster_centers,
    constrict_disperse_loss,
    constrict_loss,
    disperse_loss,
    sls_objective,
)


@pytest.fixture
def clustered_features():
    rng = np.random.default_rng(0)
    cluster_a = rng.normal(0.0, 0.1, size=(10, 4))
    cluster_b = rng.normal(3.0, 0.1, size=(10, 4))
    features = np.vstack([cluster_a, cluster_b])
    index_sets = {0: np.arange(10), 1: np.arange(10, 20)}
    return features, index_sets


class TestClusterCenters:
    def test_centers_are_means(self, clustered_features):
        features, index_sets = clustered_features
        centers = cluster_centers(features, index_sets)
        np.testing.assert_allclose(centers[0], features[:10].mean(axis=0))
        np.testing.assert_allclose(centers[1], features[10:].mean(axis=0))

    def test_invalid_indices_rejected(self, clustered_features):
        features, _ = clustered_features
        with pytest.raises(ValidationError):
            cluster_centers(features, {0: np.array([100])})

    def test_empty_sets_rejected(self, clustered_features):
        features, _ = clustered_features
        with pytest.raises(ValidationError):
            cluster_centers(features, {})


class TestConstrictLoss:
    def test_tight_clusters_have_small_loss(self, clustered_features):
        features, index_sets = clustered_features
        assert constrict_loss(features, index_sets) < 0.5

    def test_identical_points_give_zero(self):
        features = np.tile([[1.0, 2.0]], (6, 1))
        index_sets = {0: np.arange(3), 1: np.arange(3, 6)}
        assert constrict_loss(features, index_sets) == pytest.approx(0.0)

    def test_spread_increases_loss(self):
        rng = np.random.default_rng(1)
        tight = rng.normal(0, 0.1, size=(10, 3))
        spread = rng.normal(0, 2.0, size=(10, 3))
        index_sets = {0: np.arange(10)}
        assert constrict_loss(spread, index_sets) > constrict_loss(tight, index_sets)

    def test_singleton_clusters_contribute_nothing(self):
        features = np.random.default_rng(2).normal(size=(3, 2))
        index_sets = {0: np.array([0]), 1: np.array([1]), 2: np.array([2])}
        assert constrict_loss(features, index_sets) == 0.0

    def test_non_negative(self, clustered_features):
        features, index_sets = clustered_features
        assert constrict_loss(features, index_sets) >= 0.0


class TestDisperseLoss:
    def test_separated_centers_give_large_value(self, clustered_features):
        features, index_sets = clustered_features
        assert disperse_loss(features, index_sets) > 10.0

    def test_single_cluster_gives_zero(self):
        features = np.random.default_rng(0).normal(size=(5, 3))
        assert disperse_loss(features, {0: np.arange(5)}) == 0.0

    def test_coincident_centers_give_zero(self):
        features = np.vstack([np.ones((4, 2)), np.ones((4, 2))])
        index_sets = {0: np.arange(4), 1: np.arange(4, 8)}
        assert disperse_loss(features, index_sets) == pytest.approx(0.0)


class TestCombinedLoss:
    def test_well_separated_clusters_give_negative_loss(self, clustered_features):
        features, index_sets = clustered_features
        assert constrict_disperse_loss(features, index_sets) < 0.0

    def test_equals_difference_of_terms(self, clustered_features):
        features, index_sets = clustered_features
        combined = constrict_disperse_loss(features, index_sets)
        expected = constrict_loss(features, index_sets) - disperse_loss(
            features, index_sets
        )
        assert combined == pytest.approx(expected)


class TestSlsObjective:
    def test_returns_all_components(self, hard_blobs_dataset):
        data, labels = hard_blobs_dataset
        data = standardize(data)
        model = GaussianRBM(8, n_epochs=3, random_state=0).fit(data)
        index_sets = {int(k): np.flatnonzero(labels == k) for k in np.unique(labels)}
        result = sls_objective(model, data, index_sets, eta=0.4)
        assert set(result) == {"log_likelihood_proxy", "l_data", "l_recon", "objective"}
        assert np.isfinite(result["objective"])

    def test_invalid_eta(self, hard_blobs_dataset):
        data, labels = hard_blobs_dataset
        data = standardize(data)
        model = GaussianRBM(4, n_epochs=1, random_state=0).fit(data)
        index_sets = {0: np.arange(10)}
        with pytest.raises(ValidationError):
            sls_objective(model, data, index_sets, eta=1.5)
