"""Tests for RBM parameter initialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.rbm.initialization import initialize_weights, visible_bias_from_data


class TestInitializeWeights:
    def test_shape(self):
        weights = initialize_weights(10, 4, random_state=0)
        assert weights.shape == (10, 4)

    def test_gaussian_scale(self):
        weights = initialize_weights(500, 200, sigma=0.01, random_state=0)
        assert abs(weights.std() - 0.01) < 0.002

    def test_xavier_scale(self):
        weights = initialize_weights(100, 100, scheme="xavier", random_state=0)
        expected = np.sqrt(2.0 / 200)
        assert abs(weights.std() - expected) < 0.02

    def test_zeros(self):
        weights = initialize_weights(5, 3, scheme="zeros")
        assert np.all(weights == 0.0)

    def test_reproducible(self):
        a = initialize_weights(6, 6, random_state=1)
        b = initialize_weights(6, 6, random_state=1)
        np.testing.assert_array_equal(a, b)

    def test_unknown_scheme(self):
        with pytest.raises(ValidationError):
            initialize_weights(3, 3, scheme="orthogonal")


class TestVisibleBias:
    def test_binary_log_odds(self):
        data = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 1.0], [1.0, 0.0]])
        bias = visible_bias_from_data(data, binary=True)
        # First unit always on -> strongly positive bias; second mostly off.
        assert bias[0] > 2.0
        assert bias[1] < 0.0

    def test_gaussian_mean(self):
        data = np.array([[1.0, -2.0], [3.0, -4.0]])
        bias = visible_bias_from_data(data, binary=False)
        np.testing.assert_allclose(bias, [2.0, -3.0])

    def test_binary_bias_is_finite_for_constant_units(self):
        data = np.zeros((10, 3))
        bias = visible_bias_from_data(data, binary=True)
        assert np.all(np.isfinite(bias))
