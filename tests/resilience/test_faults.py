"""Tests for the deterministic fault-injection proxy.

A tiny stdlib upstream server counts the requests that actually reach it;
the proxy sits in front and misbehaves on a fully scripted schedule, so each
fault mode is pinned to one specific request.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.exceptions import ValidationError
from repro.resilience import (
    FaultDecision,
    FaultProxy,
    FaultSchedule,
    ScriptedSchedule,
)
from repro.serving.wire import WireError, request_json


class _EchoHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, *args):  # noqa: A002 - stdlib name
        pass

    def _respond(self):
        with self.server.lock:  # type: ignore[attr-defined]
            self.server.n_hits += 1  # type: ignore[attr-defined]
            hits = self.server.n_hits  # type: ignore[attr-defined]
        body = json.dumps({"path": self.path, "hit": hits}).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._respond()

    def do_POST(self):  # noqa: N802 - stdlib naming
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        self._respond()


@pytest.fixture()
def upstream():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _EchoHandler)
    server.daemon_threads = True
    server.n_hits = 0
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def through(proxy, path="/ping"):
    host, port = proxy.address
    return request_json(host, port, "GET", path, timeout=10.0)


class TestScriptedFaults:
    def test_clean_relay(self, upstream):
        schedule = ScriptedSchedule(["relay"])
        with FaultProxy(*upstream.server_address[:2], schedule=schedule) as proxy:
            status, body = through(proxy, "/ping")
            assert status == 200
            assert body == {"path": "/ping", "hit": 1}
            assert proxy.counters.as_dict()["n_relayed"] == 1

    def test_injected_500_never_reaches_upstream(self, upstream):
        schedule = ScriptedSchedule(["error"])
        with FaultProxy(*upstream.server_address[:2], schedule=schedule) as proxy:
            status, body = through(proxy)
            assert status == 500
            assert "injected fault" in body["error"]
            assert upstream.n_hits == 0
            assert proxy.counters.as_dict()["n_injected_errors"] == 1

    def test_reset_severs_the_client(self, upstream):
        schedule = ScriptedSchedule(["reset"])
        with FaultProxy(*upstream.server_address[:2], schedule=schedule) as proxy:
            with pytest.raises(WireError):
                through(proxy)
            assert upstream.n_hits == 0
            assert proxy.counters.as_dict()["n_reset"] == 1

    def test_drop_closes_without_a_response(self, upstream):
        schedule = ScriptedSchedule(["drop"])
        with FaultProxy(*upstream.server_address[:2], schedule=schedule) as proxy:
            with pytest.raises(WireError):
                through(proxy)
            assert upstream.n_hits == 0
            assert proxy.counters.as_dict()["n_dropped"] == 1

    def test_duplicate_hits_upstream_twice(self, upstream):
        schedule = ScriptedSchedule(["duplicate"])
        with FaultProxy(*upstream.server_address[:2], schedule=schedule) as proxy:
            status, body = through(proxy)
            # The client receives the *first* upstream response; the second
            # exists only to exercise idempotent server paths.
            assert status == 200
            assert body["hit"] == 1
            assert upstream.n_hits == 2
            assert proxy.counters.as_dict()["n_duplicated"] == 1

    def test_exhausted_script_relays_cleanly(self, upstream):
        schedule = ScriptedSchedule(["error"])
        with FaultProxy(*upstream.server_address[:2], schedule=schedule) as proxy:
            through(proxy)  # consumes the scripted error
            status, body = through(proxy, "/after")
            assert status == 200
            assert body["path"] == "/after"
        assert schedule.log == [("/ping", "error"), ("/after", "relay")]

    def test_counters_track_every_request(self, upstream):
        schedule = ScriptedSchedule(["relay", "error", "drop"])
        with FaultProxy(*upstream.server_address[:2], schedule=schedule) as proxy:
            through(proxy)
            through(proxy)
            with pytest.raises(WireError):
                through(proxy)
            counters = proxy.counters.as_dict()
        assert counters["n_requests"] == 3
        assert counters["n_relayed"] == 1
        assert counters["n_injected_errors"] == 1
        assert counters["n_dropped"] == 1

    def test_dead_upstream_counts_as_upstream_failure(self, upstream):
        schedule = ScriptedSchedule([])
        address = upstream.server_address[:2]
        with FaultProxy(*address, schedule=schedule) as proxy:
            upstream.shutdown()
            upstream.server_close()
            with pytest.raises(WireError):
                through(proxy)
            assert proxy.counters.as_dict()["n_upstream_failures"] == 1


class TestFaultSchedule:
    def test_same_seed_same_decisions(self):
        kwargs = dict(p_reset=0.2, p_drop=0.2, p_duplicate=0.2, p_error=0.2,
                      latency_ms=1.0, jitter_ms=2.0)
        first = FaultSchedule(7, **kwargs)
        second = FaultSchedule(7, **kwargs)
        decisions_a = [first.decide("/x") for _ in range(64)]
        decisions_b = [second.decide("/x") for _ in range(64)]
        assert decisions_a == decisions_b
        assert {d.action for d in decisions_a} > {"relay"}  # faults did fire

    def test_protected_routes_always_relay(self):
        schedule = FaultSchedule(0, p_reset=1.0, protect_routes=["/safe"])
        assert schedule.decide("/safe").action == "relay"
        assert schedule.decide("/other").action == "reset"

    def test_error_routes_scope_the_500s(self):
        schedule = FaultSchedule(0, p_error=1.0, error_routes=["/cell/result"])
        assert schedule.decide("/cell/result").action == "error"
        assert schedule.decide("/cell/lease").action == "relay"

    def test_latency_applies_to_every_decision(self):
        schedule = FaultSchedule(0, latency_ms=5.0)
        decision = schedule.decide("/x")
        assert decision.action == "relay"
        assert decision.latency_s == pytest.approx(0.005)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValidationError, match="p_drop"):
            FaultSchedule(0, p_drop=1.5)


class TestValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault action"):
            FaultDecision("explode")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError, match="latency"):
            FaultDecision("relay", -0.1)

    def test_schedule_must_decide(self):
        with pytest.raises(ValidationError, match="decide"):
            FaultProxy("127.0.0.1", 1, schedule=object())
