"""Tests for the write-ahead grid journal and the grid fingerprint.

The torn-write cases simulate exactly what a SIGKILL can leave behind: a
half-written final line.  Everything before it was fsync'd in order, so
replay must recover it all.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.resilience import GridJournal, JournalError, grid_fingerprint
from repro.resilience.journal import JOURNAL_VERSION

CELLS = [
    {"cell_id": "0:0", "dataset_ref": "IR", "algorithm": "DP",
     "label": "DP", "repeat": 0},
    {"cell_id": "0:1", "dataset_ref": "IR", "algorithm": "DP",
     "label": "DP", "repeat": 1},
]
SETTINGS = {"n_hidden": 4, "n_epochs": 2, "random_state": 0,
            "artifact_dir": None}
OUTCOME_A = {"report": {"accuracy": 1 / 3}, "artifact_hit": False}
OUTCOME_B = {"report": {"accuracy": 0.1 + 0.2}, "artifact_hit": True}


def make_dataset(seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        name="Iris",
        abbreviation="IR",
        data=rng.standard_normal((6, 3)),
        labels=rng.integers(0, 2, size=6),
        metadata={},
    )


@pytest.fixture()
def fingerprint():
    return grid_fingerprint(CELLS, SETTINGS, {"IR": make_dataset()})


class TestFingerprint:
    def test_deterministic(self, fingerprint):
        again = grid_fingerprint(CELLS, SETTINGS, {"IR": make_dataset()})
        assert again == fingerprint

    def test_artifact_dir_is_ignored(self, fingerprint):
        settings = dict(SETTINGS, artifact_dir="/tmp/somewhere-else")
        assert grid_fingerprint(
            CELLS, settings, {"IR": make_dataset()}
        ) == fingerprint

    def test_settings_change_the_fingerprint(self, fingerprint):
        settings = dict(SETTINGS, n_hidden=8)
        assert grid_fingerprint(
            CELLS, settings, {"IR": make_dataset()}
        ) != fingerprint

    def test_cell_order_changes_the_fingerprint(self, fingerprint):
        assert grid_fingerprint(
            list(reversed(CELLS)), SETTINGS, {"IR": make_dataset()}
        ) != fingerprint

    def test_dataset_content_changes_the_fingerprint(self, fingerprint):
        assert grid_fingerprint(
            CELLS, SETTINGS, {"IR": make_dataset(seed=1)}
        ) != fingerprint

    def test_datasets_participate_at_all(self, fingerprint):
        assert grid_fingerprint(CELLS, SETTINGS) != fingerprint


class TestFreshAndReplay:
    def test_roundtrip(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_result("0:0", OUTCOME_A)
            journal.record_result("0:1", OUTCOME_B)
        resumed = GridJournal(path, fingerprint=fingerprint, resume=True)
        assert resumed.replayed == {"0:0": OUTCOME_A, "0:1": OUTCOME_B}
        assert resumed.n_torn_lines == 0
        resumed.close()

    def test_fresh_truncates_previous_journal(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_result("0:0", OUTCOME_A)
        with GridJournal(path, fingerprint=fingerprint):
            pass
        resumed = GridJournal(path, fingerprint=fingerprint, resume=True)
        assert resumed.replayed == {}
        resumed.close()

    def test_duplicate_cell_records_last_write_wins(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_result("0:0", OUTCOME_A)
            journal.record_result("0:0", OUTCOME_B)
        resumed = GridJournal(path, fingerprint=fingerprint, resume=True)
        assert resumed.replayed == {"0:0": OUTCOME_B}
        resumed.close()

    def test_error_records_are_journalled_but_not_replayed(
        self, tmp_path, fingerprint
    ):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_error(
                "0:1", worker_id="w1", kind="MemoryError", transient=True
            )
            journal.record_result("0:0", OUTCOME_A)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[1] == {
            "cell_id": "0:1", "kind": "MemoryError", "transient": True,
            "type": "error", "worker_id": "w1",
        }
        resumed = GridJournal(path, fingerprint=fingerprint, resume=True)
        assert resumed.replayed == {"0:0": OUTCOME_A}  # the error is skipped
        resumed.close()

    def test_resume_keeps_appending(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_result("0:0", OUTCOME_A)
        with GridJournal(path, fingerprint=fingerprint, resume=True) as journal:
            journal.record_result("0:1", OUTCOME_B)
        final = GridJournal(path, fingerprint=fingerprint, resume=True)
        assert set(final.replayed) == {"0:0", "0:1"}
        final.close()

    def test_parent_directories_are_created(self, tmp_path, fingerprint):
        path = tmp_path / "deep" / "nested" / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint):
            pass
        assert path.is_file()


class TestTornTail:
    def test_half_written_final_line_is_dropped(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_result("0:0", OUTCOME_A)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "cell", "cell_id": "0:1", "outc')
        resumed = GridJournal(path, fingerprint=fingerprint, resume=True)
        assert resumed.replayed == {"0:0": OUTCOME_A}
        assert resumed.n_torn_lines == 1
        resumed.close()

    def test_blank_trailing_lines_are_tolerated(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_result("0:0", OUTCOME_A)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        resumed = GridJournal(path, fingerprint=fingerprint, resume=True)
        assert resumed.replayed == {"0:0": OUTCOME_A}
        assert resumed.n_torn_lines == 0
        resumed.close()

    def test_non_object_line_ends_the_replay(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_result("0:0", OUTCOME_A)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('[1, 2, 3]\n')
        resumed = GridJournal(path, fingerprint=fingerprint, resume=True)
        assert resumed.replayed == {"0:0": OUTCOME_A}
        assert resumed.n_torn_lines == 1
        resumed.close()


class TestRefusals:
    def test_resume_requires_an_existing_file(self, tmp_path, fingerprint):
        with pytest.raises(JournalError, match="does not exist"):
            GridJournal(
                tmp_path / "missing.jsonl", fingerprint=fingerprint, resume=True
            )

    def test_fingerprint_mismatch_refuses_replay(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        with GridJournal(path, fingerprint=fingerprint) as journal:
            journal.record_result("0:0", OUTCOME_A)
        with pytest.raises(JournalError, match="different grid"):
            GridJournal(path, fingerprint="0" * 64, resume=True)

    def test_version_mismatch_refuses_replay(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        header = {
            "type": "header",
            "version": JOURNAL_VERSION + 1,
            "fingerprint": fingerprint,
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(JournalError, match="version"):
            GridJournal(path, fingerprint=fingerprint, resume=True)

    def test_empty_file_refused(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            GridJournal(path, fingerprint=fingerprint, resume=True)

    def test_garbage_header_refused(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(JournalError, match="header"):
            GridJournal(path, fingerprint=fingerprint, resume=True)

    def test_headerless_journal_refused(self, tmp_path, fingerprint):
        path = tmp_path / "grid.jsonl"
        path.write_text('{"type": "cell", "cell_id": "0:0", "outcome": {}}\n')
        with pytest.raises(JournalError, match="header"):
            GridJournal(path, fingerprint=fingerprint, resume=True)

    def test_write_after_close_raises(self, tmp_path, fingerprint):
        journal = GridJournal(tmp_path / "grid.jsonl", fingerprint=fingerprint)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.record_result("0:0", OUTCOME_A)
