"""Unit tests for the failure policy: classification, retries, quarantine.

Everything here is pure state-machine logic — no sockets, no clocks — so the
tests enumerate the policy tables exhaustively.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ValidationError
from repro.resilience import (
    TRANSIENT_ERROR_KINDS,
    CircuitBreaker,
    RetryPolicy,
    classify_failure,
)


class TestClassifyFailure:
    @pytest.mark.parametrize("kind", sorted(TRANSIENT_ERROR_KINDS))
    def test_every_listed_kind_is_transient(self, kind):
        assert classify_failure(kind) is True

    @pytest.mark.parametrize(
        "kind",
        ["ValueError", "TypeError", "ZeroDivisionError", "KeyError",
         "RuntimeError", "CellExecutionError", "AssertionError"],
    )
    def test_unknown_kinds_default_deterministic(self, kind):
        assert classify_failure(kind, "singular matrix") is False

    @pytest.mark.parametrize(
        "message",
        ["read timed out", "Connection reset by peer", "BROKEN PIPE on fd 7",
         "resource temporarily unavailable", "CUDA out of memory"],
    )
    def test_message_markers_override_unknown_kind(self, message):
        # Third-party wrappers hide OS failures behind their own classes;
        # the message still gives them away.
        assert classify_failure("SomeLibraryError", message) is True

    def test_empty_inputs_are_deterministic(self):
        assert classify_failure(None) is False
        assert classify_failure("", "") is False

    def test_plain_bug_message_stays_deterministic(self):
        assert classify_failure("ValueError", "division by zero") is False


class TestRetryPolicy:
    def test_allows_up_to_budget(self):
        policy = RetryPolicy(max_cell_retries=2)
        assert policy.allows(1) is True
        assert policy.allows(2) is True
        assert policy.allows(3) is False

    def test_zero_retries_restores_fail_fast(self):
        policy = RetryPolicy(max_cell_retries=0)
        assert policy.allows(1) is False

    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_cap=3.0)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0
        assert policy.delay(4) == 3.0  # capped
        assert policy.delay(10) == 3.0

    def test_delay_without_failures_is_zero(self):
        assert RetryPolicy().delay(0) == 0.0
        assert RetryPolicy().delay(-1) == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError, match="max_cell_retries"):
            RetryPolicy(max_cell_retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValidationError, match="backoff"):
            RetryPolicy(backoff_base=-0.1)


class TestCircuitBreaker:
    def test_trips_at_threshold_exactly_once(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure("w1") is False
        assert breaker.record_failure("w1") is False
        assert breaker.record_failure("w1") is True  # newly tripped
        assert breaker.record_failure("w1") is False  # already quarantined
        assert breaker.is_quarantined("w1") is True

    def test_success_resets_strikes(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("w1")
        breaker.record_success("w1")
        assert breaker.strikes("w1") == 0
        assert breaker.record_failure("w1") is False
        assert breaker.is_quarantined("w1") is False

    def test_workers_are_independent(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("w1")
        breaker.record_failure("w2")
        assert breaker.record_failure("w1") is True
        assert breaker.is_quarantined("w2") is False
        assert breaker.quarantined == ["w1"]

    def test_quarantined_list_is_sorted(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("zeta")
        breaker.record_failure("alpha")
        assert breaker.quarantined == ["alpha", "zeta"]

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(threshold=0)

    def test_concurrent_failures_trip_exactly_once(self):
        breaker = CircuitBreaker(threshold=8)
        trips = []
        barrier = threading.Barrier(8)

        def strike():
            barrier.wait()
            if breaker.record_failure("w1"):
                trips.append(True)

        threads = [threading.Thread(target=strike) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(trips) == 1
        assert breaker.is_quarantined("w1")
