"""Shared-secret authentication across the distributed surfaces.

Covers the coordinator (every route except ``/healthz``), the standby
worker's ``/join`` endpoint, the worker client's fatal 401 handling, and one
end-to-end loopback grid where the secret travels via ``REPRO_SECRET``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets import load_uci_suite
from repro.datasets.base import Dataset, DatasetSuite
from repro.distributed import DistributedError, GridCoordinator
from repro.distributed.messages import PROTOCOL_VERSION
from repro.distributed.worker import WorkerClient, _StandbyServer
from repro.experiments.runner import ExperimentRunner
from repro.serving.wire import request_json

SECRET = "correct-horse-battery"

SETTINGS = {
    "n_hidden": 4,
    "n_epochs": 2,
    "batch_size": 32,
    "random_state": 0,
    "config_overrides": None,
    "artifact_dir": None,
}


def make_dataset():
    rng = np.random.default_rng(0)
    return Dataset(
        name="Iris", abbreviation="IR",
        data=rng.standard_normal((6, 3)),
        labels=rng.integers(0, 2, size=6),
        metadata={},
    )


@pytest.fixture()
def coordinator():
    cells = [{"cell_id": "0:0", "dataset_ref": "IR", "algorithm": "DP",
              "label": "DP", "repeat": 0}]
    coord = GridCoordinator(
        cells, {"IR": make_dataset()}, SETTINGS, secret=SECRET
    ).start()
    yield coord
    coord.stop()


def call(coordinator, method, path, payload=None, secret=None):
    host, port = coordinator.address
    return request_json(
        host, port, method, path, payload, timeout=10.0, secret=secret
    )


class TestCoordinatorAuth:
    def test_healthz_stays_open(self, coordinator):
        status, body = call(coordinator, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_status_requires_the_secret(self, coordinator):
        status, body = call(coordinator, "GET", "/status")
        assert status == 401
        assert "secret" in body["error"]
        status, body = call(coordinator, "GET", "/status", secret=SECRET)
        assert status == 200
        assert body["secret_required"] is True

    def test_wrong_secret_is_401(self, coordinator):
        status, _ = call(coordinator, "GET", "/status", secret="wrong")
        assert status == 401

    def test_post_routes_require_the_secret(self, coordinator):
        payload = {"worker_id": "w1"}
        status, _ = call(coordinator, "POST", "/cell/lease", payload)
        assert status == 401
        status, body = call(
            coordinator, "POST", "/cell/lease", payload, secret=SECRET
        )
        assert status == 200
        assert body["cell"]["cell_id"] == "0:0"

    def test_dataset_transfer_requires_the_secret(self, coordinator):
        assert call(coordinator, "GET", "/dataset/IR")[0] == 401
        status, body = call(coordinator, "GET", "/dataset/IR", secret=SECRET)
        assert status == 200
        assert "digest" in body


class TestWorkerClientAuth:
    def test_rejected_secret_is_fatal_not_retried(self, coordinator):
        host, port = coordinator.address
        client = WorkerClient(host, port, secret="wrong")
        with pytest.raises(DistributedError, match="shared secret"):
            client.run()

    def test_missing_secret_is_fatal(self, coordinator):
        host, port = coordinator.address
        client = WorkerClient(host, port)
        with pytest.raises(DistributedError, match="shared secret"):
            client.run()

    def test_correct_secret_registers(self, coordinator):
        host, port = coordinator.address
        client = WorkerClient(host, port, secret=SECRET)
        body = client._exchange(
            "POST", "/worker/register",
            {"protocol": PROTOCOL_VERSION, "worker_id": client.worker_id},
        )
        assert body["n_cells"] == 1


class TestStandbyWorkerAuth:
    @pytest.fixture()
    def standby(self):
        server = _StandbyServer(("127.0.0.1", 0), secret=SECRET)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_join_requires_the_secret(self, standby):
        host, port = standby.server_address[:2]
        payload = {"protocol": PROTOCOL_VERSION, "coordinator": "127.0.0.1:1"}
        status, body = request_json(
            host, port, "POST", "/join", payload, timeout=10.0
        )
        assert status == 401
        assert not standby.join_event.is_set()
        status, body = request_json(
            host, port, "POST", "/join", payload, timeout=10.0, secret=SECRET
        )
        assert status == 200 and body == {"ok": True}
        assert standby.join_event.is_set()

    def test_healthz_stays_open(self, standby):
        host, port = standby.server_address[:2]
        status, body = request_json(host, port, "GET", "/healthz", timeout=10.0)
        assert status == 200
        assert body["status"] in ("idle", "busy")


class TestEndToEndSecret:
    def test_loopback_grid_completes_with_a_secret(self):
        # The secret reaches worker subprocesses via REPRO_SECRET (never
        # argv); a full tiny grid proves the whole chain authenticates.
        suite = DatasetSuite(
            "mini", list(load_uci_suite(scale=0.25, random_state=0))[:1]
        )
        sequential = ExperimentRunner(
            ("DP",), n_repeats=1, random_state=0
        ).run_suite(suite)
        runner = ExperimentRunner(
            ("DP",), n_repeats=1, random_state=0, workers=1, secret=SECRET
        )
        table = runner.run_suite(suite)
        assert table.to_dict() == sequential.to_dict()
