"""Worker-client hardening: transport retries, fatal statuses, and the
heartbeat thread's survival guarantee.

``request_json`` is monkeypatched with scripted responses, so every retry
path runs in milliseconds with no sockets.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.distributed import worker as worker_module
from repro.distributed.errors import DistributedError
from repro.distributed.worker import WorkerClient
from repro.serving.wire import WireError


def scripted(responses, calls):
    """A request_json stand-in replaying ``responses`` (exceptions raise)."""

    def fake_request_json(host, port, method, path, payload=None, **kwargs):
        calls.append({"path": path, "payload": payload,
                      "secret": kwargs.get("secret")})
        if not responses:
            raise AssertionError("unexpected extra request")
        entry = responses.pop(0)
        if isinstance(entry, Exception):
            raise entry
        return entry

    return fake_request_json


@pytest.fixture()
def client():
    return WorkerClient(
        "127.0.0.1", 1, worker_id="w-test",
        backoff_base=0.001, backoff_cap=0.002,
        max_consecutive_failures=3,
    )


class TestExchange:
    def test_retries_5xx_then_succeeds(self, client, monkeypatch):
        calls = []
        monkeypatch.setattr(
            worker_module, "request_json",
            scripted(
                [(500, {"error": "mid-restart"}),
                 (503, {"error": "still coming up"}),
                 (200, {"ok": True})],
                calls,
            ),
        )
        assert client._exchange("POST", "/cell/lease", {}) == {"ok": True}
        assert len(calls) == 3
        assert client._failures == 0  # success resets the streak

    def test_retries_transport_errors(self, client, monkeypatch):
        calls = []
        monkeypatch.setattr(
            worker_module, "request_json",
            scripted([WireError("reset"), (200, {"ok": True})], calls),
        )
        assert client._exchange("POST", "/cell/lease", {}) == {"ok": True}
        assert len(calls) == 2

    def test_gives_up_after_max_consecutive_failures(self, client, monkeypatch):
        monkeypatch.setattr(
            worker_module, "request_json",
            scripted([WireError("down")] * 10, []),
        )
        with pytest.raises(DistributedError, match="unreachable after 3"):
            client._exchange("POST", "/cell/lease", {})

    def test_401_is_fatal_immediately(self, client, monkeypatch):
        calls = []
        monkeypatch.setattr(
            worker_module, "request_json",
            scripted([(401, {"error": "bad secret"})], calls),
        )
        with pytest.raises(DistributedError, match="shared secret"):
            client._exchange("POST", "/worker/register", {})
        assert len(calls) == 1  # no retry: the refusal is deliberate

    def test_other_4xx_is_fatal_immediately(self, client, monkeypatch):
        monkeypatch.setattr(
            worker_module, "request_json",
            scripted([(400, {"error": "unknown cell id"})], []),
        )
        with pytest.raises(DistributedError, match="rejected"):
            client._exchange("POST", "/cell/result", {})

    def test_secret_travels_on_every_exchange(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            worker_module, "request_json",
            scripted([(200, {"ok": True})], calls),
        )
        client = WorkerClient("127.0.0.1", 1, secret="s3cret")
        client._exchange("POST", "/cell/lease", {})
        assert calls[0]["secret"] == "s3cret"


class TestHeartbeatGuard:
    def test_heartbeat_thread_survives_arbitrary_exceptions(self, monkeypatch):
        """A dead heartbeat thread silently expires every lease the worker
        holds; the loop must survive *any* exception, not just WireError."""
        attempts = []
        failures = [ValueError("surprise"), WireError("blip"),
                    RuntimeError("weird")]

        def flaky_request_json(*args, **kwargs):
            attempts.append(time.monotonic())
            if failures:
                raise failures.pop(0)
            return 200, {"renewed": 1}

        client = WorkerClient("127.0.0.1", 1, worker_id="w-test")
        client._heartbeat_interval = 0.01
        monkeypatch.setattr(worker_module, "request_json", flaky_request_json)
        thread = threading.Thread(target=client._heartbeat_loop, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        # At least one successful beat after all three scripted failures
        # proves the loop outlived every exception class.
        while len(attempts) < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert thread.is_alive()
        client.stop()
        thread.join(timeout=2)
        assert len(attempts) >= 4

    def test_stop_ends_the_loop(self, monkeypatch):
        monkeypatch.setattr(
            worker_module, "request_json",
            lambda *a, **k: (200, {"renewed": 0}),
        )
        client = WorkerClient("127.0.0.1", 1)
        client._heartbeat_interval = 0.01
        thread = threading.Thread(target=client._heartbeat_loop, daemon=True)
        thread.start()
        client.stop()
        thread.join(timeout=2)
        assert not thread.is_alive()
