"""Protocol tests for :class:`GridCoordinator` over real HTTP.

A coordinator is started on an ephemeral port and exercised with
:func:`repro.serving.wire.request_json` playing the worker side by hand —
no real worker processes, so every interleaving is scripted explicitly.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.distributed import (
    CellExecutionError,
    CoordinatorDrained,
    DistributedError,
    GridCoordinator,
)
from repro.distributed.messages import PROTOCOL_VERSION
from repro.exceptions import ValidationError
from repro.serving.wire import request_json

SETTINGS = {
    "n_hidden": 4,
    "n_epochs": 2,
    "batch_size": 32,
    "random_state": 0,
    "config_overrides": None,
    "artifact_dir": None,
}

OUTCOME = {
    "report": {
        "accuracy": 0.9,
        "purity": 0.9,
        "rand": 0.8,
        "adjusted_rand": 0.7,
        "fmi": 0.8,
        "nmi": 0.6,
        "n_samples": 10,
        "n_clusters": 2,
        "extras": {},
    },
    "artifact_hit": False,
    "supervision_hit": False,
}


def make_cells(n=2):
    return [
        {
            "cell_id": f"0:{repeat}",
            "dataset_ref": "IR",
            "algorithm": "DP",
            "label": "DP",
            "repeat": repeat,
        }
        for repeat in range(n)
    ]


def make_dataset():
    rng = np.random.default_rng(0)
    return Dataset(
        name="Iris",
        abbreviation="IR",
        data=rng.standard_normal((6, 3)),
        labels=rng.integers(0, 2, size=6),
        metadata={},
    )


@pytest.fixture()
def coordinator():
    coord = GridCoordinator(
        make_cells(), {"IR": make_dataset()}, SETTINGS, lease_timeout=30.0
    ).start()
    yield coord
    coord.stop()


def call(coordinator, method, path, payload=None):
    host, port = coordinator.address
    return request_json(host, port, method, path, payload, timeout=10.0)


def register(coordinator, worker_id="w1"):
    return call(
        coordinator,
        "POST",
        "/worker/register",
        {"protocol": PROTOCOL_VERSION, "worker_id": worker_id},
    )


class TestConstruction:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError, match="at least one cell"):
            GridCoordinator([], {}, SETTINGS)

    def test_duplicate_cell_ids_rejected(self):
        cells = make_cells(1) * 2
        with pytest.raises(ValidationError, match="unique"):
            GridCoordinator(cells, {"IR": make_dataset()}, SETTINGS)

    def test_unknown_dataset_ref_rejected(self):
        with pytest.raises(ValidationError, match="unknown datasets"):
            GridCoordinator(make_cells(), {}, SETTINGS)


class TestRegistration:
    def test_register_returns_run_parameters(self, coordinator):
        status, body = register(coordinator)
        assert status == 200
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["settings"]["n_hidden"] == 4
        assert body["lease_timeout"] == 30.0
        assert 0 < body["heartbeat_interval"] < body["lease_timeout"]
        assert body["n_cells"] == 2

    def test_protocol_mismatch_is_400(self, coordinator):
        status, body = call(
            coordinator,
            "POST",
            "/worker/register",
            {"protocol": 999, "worker_id": "w1"},
        )
        assert status == 400
        assert "protocol" in body["error"]

    def test_missing_worker_id_is_400(self, coordinator):
        status, body = call(
            coordinator, "POST", "/worker/register",
            {"protocol": PROTOCOL_VERSION},
        )
        assert status == 400


class TestLeaseResultFlow:
    def test_full_grid_lifecycle(self, coordinator):
        register(coordinator)
        leased = []
        for _ in range(2):
            status, body = call(
                coordinator, "POST", "/cell/lease", {"worker_id": "w1"}
            )
            assert status == 200 and body["stop"] is False
            leased.append(body["cell"]["cell_id"])
        assert leased == ["0:0", "0:1"]

        # Everything leased out: an idle poll, not a stop.
        status, body = call(
            coordinator, "POST", "/cell/lease", {"worker_id": "w2"}
        )
        assert body == {"stop": False, "idle": True}

        for index, cell_id in enumerate(leased):
            status, body = call(
                coordinator,
                "POST",
                "/cell/result",
                {"worker_id": "w1", "cell_id": cell_id, "outcome": OUTCOME},
            )
            assert status == 200
            assert body["accepted"] is True
            # The last delivery tells the worker to stop on the spot.
            assert body["stop"] is (index == 1)

        results = coordinator.wait(timeout=5.0)
        assert set(results) == {"0:0", "0:1"}
        assert results["0:0"] == OUTCOME
        status, body = call(
            coordinator, "POST", "/cell/lease", {"worker_id": "w1"}
        )
        assert body == {"stop": True}

    def test_duplicate_result_not_accepted(self, coordinator):
        register(coordinator)
        call(coordinator, "POST", "/cell/lease", {"worker_id": "w1"})
        message = {"worker_id": "w1", "cell_id": "0:0", "outcome": OUTCOME}
        _, first = call(coordinator, "POST", "/cell/result", message)
        _, second = call(coordinator, "POST", "/cell/result", message)
        assert first["accepted"] is True
        assert second["accepted"] is False
        assert coordinator.queue.counters()["n_duplicates"] == 1

    def test_result_for_unknown_cell_is_400(self, coordinator):
        status, body = call(
            coordinator,
            "POST",
            "/cell/result",
            {"worker_id": "w1", "cell_id": "9:9", "outcome": OUTCOME},
        )
        assert status == 400
        assert "unknown cell id" in body["error"]

    def test_result_without_outcome_is_400(self, coordinator):
        status, _ = call(
            coordinator, "POST", "/cell/result",
            {"worker_id": "w1", "cell_id": "0:0"},
        )
        assert status == 400


class TestFailureAndDrain:
    def test_remote_error_aborts_wait(self, coordinator):
        status, _ = call(
            coordinator,
            "POST",
            "/cell/error",
            {"worker_id": "w1", "cell_id": "0:0", "error": "boom"},
        )
        assert status == 200
        with pytest.raises(CellExecutionError, match="boom"):
            coordinator.wait(timeout=5.0)
        _, body = call(coordinator, "POST", "/cell/lease", {"worker_id": "w2"})
        assert body == {"stop": True}

    def test_drain_stops_leases_and_raises(self, coordinator):
        coordinator.drain()
        _, body = call(coordinator, "POST", "/cell/lease", {"worker_id": "w1"})
        assert body == {"stop": True}
        with pytest.raises(CoordinatorDrained) as excinfo:
            coordinator.wait(timeout=5.0)
        assert excinfo.value.n_completed == 0
        assert excinfo.value.n_total == 2

    def test_drain_waits_for_inflight_cell(self, coordinator):
        _, body = call(coordinator, "POST", "/cell/lease", {"worker_id": "w1"})
        cell_id = body["cell"]["cell_id"]
        coordinator.drain()

        def finish():
            call(
                coordinator,
                "POST",
                "/cell/result",
                {"worker_id": "w1", "cell_id": cell_id, "outcome": OUTCOME},
            )

        thread = threading.Timer(0.2, finish)
        thread.start()
        try:
            with pytest.raises(CoordinatorDrained) as excinfo:
                coordinator.wait(timeout=10.0, poll=0.05)
        finally:
            thread.join()
        # The in-flight cell landed before the drain completed.
        assert excinfo.value.n_completed == 1

    def test_wait_timeout_raises(self, coordinator):
        with pytest.raises(DistributedError, match="did not complete"):
            coordinator.wait(timeout=0.2, poll=0.05)

    def test_watchdog_can_abort_wait(self, coordinator):
        def watchdog():
            raise DistributedError("all workers died")

        with pytest.raises(DistributedError, match="all workers died"):
            coordinator.wait(timeout=5.0, watchdog=watchdog)


class TestHeartbeatAndBye:
    def test_heartbeat_renews_and_reports_stop(self, coordinator):
        call(coordinator, "POST", "/cell/lease", {"worker_id": "w1"})
        status, body = call(
            coordinator, "POST", "/worker/heartbeat", {"worker_id": "w1"}
        )
        assert status == 200
        assert body == {"renewed": 1, "stop": False}

    def test_bye_releases_leases(self, coordinator):
        call(coordinator, "POST", "/cell/lease", {"worker_id": "w1"})
        status, body = call(
            coordinator, "POST", "/worker/bye", {"worker_id": "w1"}
        )
        assert status == 200
        assert body == {"released": 1}
        # The released cell is immediately available to another worker.
        _, body = call(coordinator, "POST", "/cell/lease", {"worker_id": "w2"})
        assert body["cell"]["cell_id"] == "0:0"


class TestGetRoutes:
    def test_healthz(self, coordinator):
        status, body = call(coordinator, "GET", "/healthz")
        assert status == 200
        assert body == {"status": "ok", "protocol": PROTOCOL_VERSION}

    def test_status_counters(self, coordinator):
        register(coordinator)
        status, body = call(coordinator, "GET", "/status")
        assert status == 200
        assert body["queue"]["n_cells"] == 2
        assert body["n_workers"] == 1
        assert body["draining"] is False
        assert body["failed"] is False

    def test_dataset_fetch_roundtrip(self, coordinator):
        status, body = call(coordinator, "GET", "/dataset/IR")
        assert status == 200
        dataset = make_dataset()
        np.testing.assert_array_equal(
            np.asarray(body["data"]), dataset.data
        )

    def test_unknown_dataset_is_404(self, coordinator):
        status, body = call(coordinator, "GET", "/dataset/NOPE")
        assert status == 404

    def test_unknown_routes_are_404(self, coordinator):
        assert call(coordinator, "GET", "/nope")[0] == 404
        assert call(coordinator, "POST", "/nope", {})[0] == 404
