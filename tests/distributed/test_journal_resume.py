"""Crash-resume: the write-ahead journal through the coordinator and CLI.

Three layers of the same guarantee:

* handler-level — a second coordinator resuming the first one's journal
  pre-completes the journalled cells and merges their outcomes verbatim;
* subprocess-level (slow) — a real ``repro evaluate --grid --workers``
  process is SIGKILLed mid-grid and rerun with ``--resume``; the merged
  table must be bit-identical to a sequential run;
* chaos (slow) — a full distributed grid runs behind a seeded
  :class:`FaultProxy` injecting 500s, drops, resets and duplicates, with
  the journal armed, and still merges bit-identically.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.datasets import load_uci_suite
from repro.datasets.base import Dataset, DatasetSuite
from repro.distributed import GridCoordinator
from repro.exceptions import ValidationError
from repro.experiments.runner import ExperimentRunner
from repro.resilience import FaultProxy, FaultSchedule, JournalError

SETTINGS = {
    "n_hidden": 4,
    "n_epochs": 2,
    "batch_size": 32,
    "random_state": 0,
    "config_overrides": None,
    "artifact_dir": None,
}

OUTCOME = {"report": {"accuracy": 1 / 3}, "artifact_hit": False,
           "supervision_hit": False}


def make_cells(n=2):
    return [
        {"cell_id": f"0:{repeat}", "dataset_ref": "IR", "algorithm": "DP",
         "label": "DP", "repeat": repeat}
        for repeat in range(n)
    ]


def make_dataset():
    rng = np.random.default_rng(0)
    return Dataset(
        name="Iris", abbreviation="IR",
        data=rng.standard_normal((6, 3)),
        labels=rng.integers(0, 2, size=6),
        metadata={},
    )


@pytest.fixture()
def make_coord():
    created = []

    def factory(n_cells=2, **kwargs):
        coordinator = GridCoordinator(
            make_cells(n_cells), {"IR": make_dataset()}, SETTINGS, **kwargs
        )
        created.append(coordinator)
        return coordinator

    yield factory
    for coordinator in created:
        coordinator._server.server_close()
        if coordinator.journal is not None:
            coordinator.journal.close()


class TestCoordinatorResume:
    def test_resumed_coordinator_replays_and_finishes(self, make_coord, tmp_path):
        path = tmp_path / "grid.jsonl"
        first = make_coord(journal=path)
        first.handle_lease({"worker_id": "w1"})
        first.handle_result(
            {"worker_id": "w1", "cell_id": "0:0", "outcome": OUTCOME}
        )
        first.journal.close()  # the coordinator "dies" here

        second = make_coord(journal=path, resume=True)
        assert second.n_replayed == 1
        assert second.queue.n_completed == 1
        assert second.describe()["n_journal_replayed"] == 1
        assert second.describe()["journal"] == str(path)
        # Only the unfinished cell is ever leased again.
        response = second.handle_lease({"worker_id": "w2"})
        assert response["cell"]["cell_id"] == "0:1"
        second.handle_result(
            {"worker_id": "w2", "cell_id": "0:1", "outcome": OUTCOME}
        )
        results = second.wait(timeout=1.0)
        assert results["0:0"] == OUTCOME  # replayed verbatim
        assert set(results) == {"0:0", "0:1"}

    def test_fully_journalled_grid_is_done_at_startup(self, make_coord, tmp_path):
        path = tmp_path / "grid.jsonl"
        first = make_coord(journal=path)
        for cell_id in ("0:0", "0:1"):
            first.handle_lease({"worker_id": "w1"})
            first.handle_result(
                {"worker_id": "w1", "cell_id": cell_id, "outcome": OUTCOME}
            )
        first.journal.close()
        second = make_coord(journal=path, resume=True)
        assert second.queue.done
        assert second.handle_lease({"worker_id": "w1"}) == {"stop": True}
        assert set(second.wait(timeout=1.0)) == {"0:0", "0:1"}

    def test_torn_tail_is_survived(self, make_coord, tmp_path):
        path = tmp_path / "grid.jsonl"
        first = make_coord(journal=path)
        first.handle_lease({"worker_id": "w1"})
        first.handle_result(
            {"worker_id": "w1", "cell_id": "0:0", "outcome": OUTCOME}
        )
        first.journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "cell", "cell_id": "0:1", "out')
        second = make_coord(journal=path, resume=True)
        assert second.n_replayed == 1
        assert second.journal.n_torn_lines == 1

    def test_foreign_journal_is_refused(self, make_coord, tmp_path):
        path = tmp_path / "grid.jsonl"
        first = make_coord(journal=path)
        first.journal.close()
        with pytest.raises(JournalError, match="different grid"):
            GridCoordinator(
                make_cells(), {"IR": make_dataset()},
                dict(SETTINGS, n_hidden=16),  # different grid identity
                journal=path, resume=True,
            )

    def test_resume_without_journal_is_rejected(self, make_coord):
        with pytest.raises(ValidationError, match="journal"):
            make_coord(resume=True)

    def test_resume_missing_file_is_refused(self, make_coord, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            make_coord(journal=tmp_path / "missing.jsonl", resume=True)

    def test_journalled_errors_are_not_replayed_as_results(
        self, make_coord, tmp_path
    ):
        path = tmp_path / "grid.jsonl"
        first = make_coord(journal=path, retry_backoff=0.0)
        first.handle_lease({"worker_id": "w1"})
        first.handle_error(
            {"worker_id": "w1", "cell_id": "0:0",
             "kind": "ConnectionResetError", "error": "reset"}
        )
        first.journal.close()
        second = make_coord(journal=path, resume=True)
        assert second.n_replayed == 0
        assert second.queue.n_completed == 0


def _subprocess_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(path for path in sys.path if path)
    return env


def _count_journalled_cells(path):
    if not path.exists():
        return 0
    count = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("type") == "cell":
            count += 1
    return count


@pytest.mark.slow
class TestCoordinatorSigkillResume:
    def test_sigkilled_grid_resumes_bit_identically(self, tmp_path):
        """SIGKILL the whole coordinator process group mid-grid, then rerun
        with ``--resume``: the merged table must match the sequential run to
        the last bit, re-running only the cells the journal does not own."""
        env = _subprocess_env()
        journal = tmp_path / "grid.jsonl"
        sequential_out = tmp_path / "sequential.json"
        resumed_out = tmp_path / "resumed.json"
        base = [
            sys.executable, "-m", "repro", "evaluate", "--grid",
            "--dataset", "IR,BCW", "--scale", "0.25",
            "--algorithms", "DP,K-means+slsRBM", "--repeats", "2",
            "--n-hidden", "6", "--epochs", "2", "--batch-size", "32",
        ]
        subprocess.run(
            base + ["--table-out", str(sequential_out)],
            env=env, check=True, timeout=300,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

        process = subprocess.Popen(
            base + ["--workers", "2", "--lease-timeout", "10",
                    "--journal", str(journal),
                    "--table-out", str(tmp_path / "never-written.json")],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if process.poll() is not None or _count_journalled_cells(journal) >= 2:
                    break
                time.sleep(0.05)
            assert process.poll() is None, (
                "grid finished before the kill could land; "
                "the workload is too small to exercise resume"
            )
            assert _count_journalled_cells(journal) >= 2
            # SIGKILL the whole group: coordinator AND its workers die with
            # no chance to flush anything beyond what was already fsync'd.
            os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup path
                os.killpg(process.pid, signal.SIGKILL)
        assert not (tmp_path / "never-written.json").exists()

        resume = subprocess.run(
            base + ["--workers", "2", "--lease-timeout", "10",
                    "--journal", str(journal), "--resume",
                    "--table-out", str(resumed_out)],
            env=env, check=True, timeout=300, capture_output=True, text=True,
        )
        assert "replayed from" in resume.stdout  # the journal was used
        resumed = json.loads(resumed_out.read_text(encoding="utf-8"))
        sequential = json.loads(sequential_out.read_text(encoding="utf-8"))
        assert resumed == sequential


@pytest.mark.slow
class TestChaosGrid:
    def test_grid_behind_fault_proxy_matches_sequential(
        self, tmp_path, monkeypatch
    ):
        """Route every worker through a seeded FaultProxy (500s, drops,
        resets, duplicates, latency) with the journal armed; the merged
        table must still be bit-identical to the sequential run."""
        from repro.distributed import worker as worker_module

        algorithms = ("DP", "K-means", "K-means+slsRBM")
        runner_kw = dict(
            n_repeats=2, n_hidden=6, n_epochs=2, batch_size=32, random_state=0
        )
        suite = DatasetSuite(
            "mini", list(load_uci_suite(scale=0.25, random_state=0))[:2]
        )
        sequential = ExperimentRunner(algorithms, **runner_kw).run_suite(suite)

        proxies = []
        real_spawn = worker_module.spawn_loopback_workers

        def proxied_spawn(n_workers, coordinator_address, **kwargs):
            host, port = coordinator_address.rsplit(":", 1)
            schedule = FaultSchedule(
                11,
                p_error=0.10, p_drop=0.05, p_reset=0.05, p_duplicate=0.05,
                latency_ms=1.0,
                protect_routes=("/worker/register",),
            )
            proxy = FaultProxy(host, int(port), schedule=schedule).start()
            proxies.append(proxy)
            return real_spawn(n_workers, proxy.address_string, **kwargs)

        monkeypatch.setattr(
            worker_module, "spawn_loopback_workers", proxied_spawn
        )
        runner = ExperimentRunner(
            algorithms, **runner_kw, workers=2, lease_timeout=5.0,
            journal=tmp_path / "chaos.jsonl",
        )
        try:
            table = runner.run_suite(suite)
        finally:
            for proxy in proxies:
                proxy.stop()

        assert table.to_dict() == sequential.to_dict()
        assert len(proxies) == 1
        counters = proxies[0].counters.as_dict()
        assert counters["n_requests"] > 0
        n_faults = (
            counters["n_injected_errors"] + counters["n_dropped"]
            + counters["n_reset"] + counters["n_duplicated"]
        )
        assert n_faults >= 1, f"no fault ever fired: {counters}"
        # Every accepted result survived the chaos into the journal.
        assert _count_journalled_cells(tmp_path / "chaos.jsonl") >= 12
