"""Wire-format tests: everything must survive JSON bit-exactly.

Each round-trip test pushes the payload through ``json.dumps``/``loads``
(not just dict copies) because the determinism guarantee of the distributed
runner rests on Python's shortest-repr float encoding.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.distributed import PROTOCOL_VERSION, ProtocolError
from repro.distributed.errors import DatasetIntegrityError
from repro.distributed.messages import (
    cell_from_wire,
    cell_to_wire,
    check_protocol,
    dataset_digest,
    dataset_from_wire,
    dataset_to_wire,
    json_safe,
    outcome_from_wire,
    outcome_to_wire,
    settings_from_wire,
    settings_to_wire,
)
from repro.experiments.runner import _RepeatOutcome
from repro.metrics.report import ClusteringReport


def roundtrip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(0)
    return Dataset(
        name="Iris",
        abbreviation="IR",
        data=rng.standard_normal((7, 3)),
        labels=rng.integers(0, 3, size=7),
        metadata={"n_classes": np.int64(3), "scale": np.float64(0.25)},
    )


class TestProtocolCheck:
    def test_matching_version_passes(self):
        check_protocol({"protocol": PROTOCOL_VERSION}, side="worker")

    @pytest.mark.parametrize("version", [None, 0, PROTOCOL_VERSION + 1, "1"])
    def test_mismatch_raises(self, version):
        with pytest.raises(ProtocolError, match="protocol"):
            check_protocol({"protocol": version}, side="coordinator")


class TestJsonSafe:
    def test_numpy_scalars_and_arrays(self):
        value = {
            "scalar": np.float64(0.1),
            "array": np.arange(3),
            "nested": [np.int32(7), (np.bool_(True),)],
        }
        safe = json_safe(value)
        assert safe == {"scalar": 0.1, "array": [0, 1, 2], "nested": [7, [True]]}
        json.dumps(safe)  # must not raise


class TestDatasetWire:
    def test_bit_exact_roundtrip(self, dataset):
        rebuilt = dataset_from_wire(roundtrip(dataset_to_wire(dataset)))
        assert rebuilt.name == dataset.name
        assert rebuilt.abbreviation == dataset.abbreviation
        # Bit-exact, not approximate: this is the determinism guarantee.
        np.testing.assert_array_equal(rebuilt.data, dataset.data)
        assert rebuilt.data.dtype == np.float64
        np.testing.assert_array_equal(rebuilt.labels, dataset.labels)
        assert rebuilt.metadata == {"n_classes": 3, "scale": 0.25}

    def test_missing_field_raises_protocol_error(self, dataset):
        payload = dataset_to_wire(dataset)
        del payload["labels"]
        with pytest.raises(ProtocolError, match="missing field"):
            dataset_from_wire(payload)


class TestDatasetIntegrity:
    def test_digest_travels_with_the_payload(self, dataset):
        payload = dataset_to_wire(dataset)
        assert payload["digest"] == dataset_digest(dataset)

    def test_digest_survives_json_roundtrip(self, dataset):
        # JSON floats round-trip bit-exactly, so the receiver recomputes the
        # identical digest from the decoded matrices.
        rebuilt = dataset_from_wire(roundtrip(dataset_to_wire(dataset)))
        assert dataset_digest(rebuilt) == dataset_digest(dataset)

    def test_tampered_data_is_rejected(self, dataset):
        payload = roundtrip(dataset_to_wire(dataset))
        payload["data"][0][0] += 1e-9
        with pytest.raises(DatasetIntegrityError, match="digest"):
            dataset_from_wire(payload)

    def test_tampered_labels_are_rejected(self, dataset):
        payload = roundtrip(dataset_to_wire(dataset))
        payload["labels"][0] = (payload["labels"][0] + 1) % 3
        with pytest.raises(DatasetIntegrityError, match="digest"):
            dataset_from_wire(payload)

    def test_absent_digest_is_tolerated(self, dataset):
        # Peers predating the digest field still interoperate.
        payload = roundtrip(dataset_to_wire(dataset))
        del payload["digest"]
        rebuilt = dataset_from_wire(payload)
        np.testing.assert_array_equal(rebuilt.data, dataset.data)

    def test_digest_depends_on_content_not_metadata(self, dataset):
        other = Dataset(
            name="Renamed", abbreviation="RN",
            data=dataset.data.copy(), labels=dataset.labels.copy(),
            metadata={"different": True},
        )
        assert dataset_digest(other) == dataset_digest(dataset)


class TestSettingsWire:
    def test_roundtrip_with_artifact_dir(self, tmp_path):
        settings = {
            "n_hidden": 6,
            "n_epochs": 2,
            "batch_size": 32,
            "random_state": 0,
            "config_overrides": {"eta": 0.5},
            "artifact_dir": tmp_path / "bundles",
        }
        rebuilt = settings_from_wire(roundtrip(settings_to_wire(settings)))
        assert rebuilt["artifact_dir"] == Path(tmp_path / "bundles")
        for key in ("n_hidden", "n_epochs", "batch_size", "random_state",
                    "config_overrides"):
            assert rebuilt[key] == settings[key]

    def test_roundtrip_without_artifact_dir(self):
        settings = {"n_hidden": 6, "artifact_dir": None}
        rebuilt = settings_from_wire(roundtrip(settings_to_wire(settings)))
        assert rebuilt["artifact_dir"] is None


class TestCellWire:
    @pytest.mark.parametrize(
        "algorithm",
        ["K-means+slsRBM", {"type": "framework", "params": {"n_clusters": 3}}],
    )
    def test_roundtrip(self, algorithm):
        wire = cell_to_wire(
            "4:1",
            dataset_ref="IR",
            algorithm=algorithm,
            label="K-means+slsRBM",
            repeat=1,
        )
        assert cell_from_wire(roundtrip(wire)) == {
            "cell_id": "4:1",
            "dataset_ref": "IR",
            "algorithm": algorithm,
            "label": "K-means+slsRBM",
            "repeat": 1,
        }

    def test_missing_field_raises(self):
        with pytest.raises(ProtocolError, match="missing field"):
            cell_from_wire({"cell_id": "0:0"})

    def test_wrong_algorithm_type_raises(self):
        wire = cell_to_wire(
            "0:0", dataset_ref="IR", algorithm="DP", label="DP", repeat=0
        )
        wire["algorithm"] = ["not", "a", "spec"]
        with pytest.raises(ProtocolError, match="name or spec"):
            cell_from_wire(wire)


class TestOutcomeWire:
    def test_bit_exact_roundtrip(self):
        # Deliberately awkward floats: each must survive JSON unchanged.
        report = ClusteringReport(
            accuracy=1 / 3,
            purity=0.1 + 0.2,
            rand=np.nextafter(0.5, 1.0),
            adjusted_rand=-0.07692307692307693,
            fmi=0.9999999999999999,
            nmi=5e-324,
            n_samples=150,
            n_clusters=3,
            extras={"seed": 7},
        )
        outcome = _RepeatOutcome(
            report=report,
            artifact_hit=True,
            supervision_hit=False,
            supervision_entry=(("IR", 0), object()),
        )
        rebuilt = outcome_from_wire(roundtrip(outcome_to_wire(outcome)))
        assert rebuilt.report == report
        assert rebuilt.artifact_hit is True
        assert rebuilt.supervision_hit is False
        # Supervision objects never travel: each worker keeps its own cache.
        assert rebuilt.supervision_entry is None

    def test_missing_field_raises(self):
        with pytest.raises(ProtocolError, match="missing field"):
            outcome_from_wire({"artifact_hit": True})
