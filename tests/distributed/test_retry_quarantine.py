"""Fake-clock state-machine tests for retry, backoff and quarantine.

The coordinator's handlers are called directly (no HTTP, no workers, no real
time): an injected clock drives the lease queue's delay pen, so every retry
and quarantine transition is asserted deterministically.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.distributed import CellExecutionError, GridCoordinator

SETTINGS = {
    "n_hidden": 4,
    "n_epochs": 2,
    "batch_size": 32,
    "random_state": 0,
    "config_overrides": None,
    "artifact_dir": None,
}

OUTCOME = {"report": {"accuracy": 0.9}, "artifact_hit": False,
           "supervision_hit": False}


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_cells(n=2):
    return [
        {"cell_id": f"0:{repeat}", "dataset_ref": "IR", "algorithm": "DP",
         "label": "DP", "repeat": repeat}
        for repeat in range(n)
    ]


def make_dataset():
    rng = np.random.default_rng(0)
    return Dataset(
        name="Iris", abbreviation="IR",
        data=rng.standard_normal((6, 3)),
        labels=rng.integers(0, 2, size=6),
        metadata={},
    )


@pytest.fixture()
def make_coord():
    created = []

    def factory(n_cells=2, clock=None, **kwargs):
        coordinator = GridCoordinator(
            make_cells(n_cells),
            {"IR": make_dataset()},
            SETTINGS,
            lease_timeout=30.0,
            clock=clock or time.monotonic,
            **kwargs,
        )
        created.append(coordinator)
        return coordinator

    yield factory
    for coordinator in created:
        # Handlers were driven directly; only the (never-served) socket and
        # the journal need closing.
        coordinator._server.server_close()
        if coordinator.journal is not None:
            coordinator.journal.close()


def lease(coordinator, worker_id="w1"):
    return coordinator.handle_lease({"worker_id": worker_id})


def fail(coordinator, cell_id, worker_id="w1", kind="ConnectionResetError",
         error="connection reset by peer"):
    return coordinator.handle_error(
        {"worker_id": worker_id, "cell_id": cell_id,
         "kind": kind, "error": error}
    )


def complete(coordinator, cell_id, worker_id="w1"):
    return coordinator.handle_result(
        {"worker_id": worker_id, "cell_id": cell_id, "outcome": OUTCOME}
    )


class TestTransientRetry:
    def test_transient_failure_requeues_with_backoff(self, make_coord):
        clock = FakeClock()
        coordinator = make_coord(clock=clock, retry_backoff=0.5)
        assert lease(coordinator)["cell"]["cell_id"] == "0:0"
        response = fail(coordinator, "0:0")
        assert response == {"ok": True, "retried": True, "stop": False}
        counters = coordinator.queue.counters()
        assert counters["n_delayed"] == 1
        assert counters["n_retried"] == 1
        # The cell sits in the backoff pen: the next lease hands out the
        # *other* cell, then goes idle.
        assert lease(coordinator)["cell"]["cell_id"] == "0:1"
        assert lease(coordinator) == {"stop": False, "idle": True}
        # Backoff elapses -> the failed cell is leased again.
        clock.advance(0.6)
        assert lease(coordinator)["cell"]["cell_id"] == "0:0"

    def test_retried_cell_can_still_complete(self, make_coord):
        clock = FakeClock()
        coordinator = make_coord(n_cells=1, clock=clock, retry_backoff=0.0)
        lease(coordinator)
        fail(coordinator, "0:0")
        assert lease(coordinator, "w2")["cell"]["cell_id"] == "0:0"
        assert complete(coordinator, "0:0", "w2")["accepted"] is True
        assert coordinator.wait(timeout=1.0) == {"0:0": OUTCOME}

    def test_message_marker_classifies_unknown_kind_transient(self, make_coord):
        coordinator = make_coord(retry_backoff=0.0)
        lease(coordinator)
        response = fail(
            coordinator, "0:0", kind="SomeLibraryError",
            error="socket read timed out after 30s",
        )
        assert response["retried"] is True
        assert coordinator._failure is None

    def test_stale_failure_after_completion_is_absorbed(self, make_coord):
        coordinator = make_coord(n_cells=1)
        lease(coordinator)
        complete(coordinator, "0:0")
        # A second worker's late failure report must not resurrect (or
        # abort) a finished grid.
        response = fail(coordinator, "0:0", worker_id="w2")
        assert response["retried"] is True
        assert coordinator._failure is None
        assert coordinator.queue.done
        assert coordinator.queue.counters()["n_delayed"] == 0


class TestFailFast:
    def test_deterministic_failure_aborts(self, make_coord):
        coordinator = make_coord()
        lease(coordinator)
        response = fail(
            coordinator, "0:0", kind="ValueError", error="singular matrix"
        )
        assert response["retried"] is False
        assert response["stop"] is True
        assert lease(coordinator, "w2") == {"stop": True}
        with pytest.raises(CellExecutionError, match="deterministic"):
            coordinator.wait(timeout=1.0)

    def test_transient_budget_exhaustion_aborts(self, make_coord):
        coordinator = make_coord(max_cell_retries=1, retry_backoff=0.0)
        lease(coordinator)
        assert fail(coordinator, "0:0")["retried"] is True
        lease(coordinator)  # 0:1
        lease(coordinator)  # the retried 0:0
        response = fail(coordinator, "0:0")
        assert response["retried"] is False
        with pytest.raises(CellExecutionError, match="retries exhausted"):
            coordinator.wait(timeout=1.0)

    def test_zero_retries_restores_fail_fast(self, make_coord):
        coordinator = make_coord(max_cell_retries=0)
        lease(coordinator)
        response = fail(coordinator, "0:0")  # transient kind, no budget
        assert response["retried"] is False
        with pytest.raises(CellExecutionError):
            coordinator.wait(timeout=1.0)


class TestQuarantine:
    def test_worker_quarantined_after_consecutive_failures(self, make_coord):
        coordinator = make_coord(
            n_cells=3, quarantine_after=2, max_cell_retries=10,
            retry_backoff=0.0,
        )
        lease(coordinator, "w1")
        fail(coordinator, "0:0", "w1")
        lease(coordinator, "w1")
        fail(coordinator, "0:0", "w1")
        # Two strikes: w1 is quarantined, its lease polls get a clean stop.
        assert coordinator.breaker.is_quarantined("w1")
        assert lease(coordinator, "w1") == {"stop": True, "quarantined": True}
        assert coordinator.describe()["quarantined_workers"] == ["w1"]
        # The grid is not poisoned: a healthy worker picks the cell up.
        assert lease(coordinator, "w2")["cell"]["cell_id"] == "0:0"

    def test_quarantine_releases_held_leases(self, make_coord):
        coordinator = make_coord(
            n_cells=3, quarantine_after=2, max_cell_retries=10,
            retry_backoff=0.0,
        )
        lease(coordinator, "w1")  # 0:0
        lease(coordinator, "w1")  # 0:1 — still held when the breaker trips
        fail(coordinator, "0:0", "w1")
        lease(coordinator, "w1")  # 0:0 again
        fail(coordinator, "0:0", "w1")  # trip: every w1 lease is released
        assert coordinator.queue.n_leased == 0
        leased = {lease(coordinator, "w2")["cell"]["cell_id"] for _ in range(3)}
        assert leased == {"0:0", "0:1", "0:2"}

    def test_success_resets_the_strike_count(self, make_coord):
        coordinator = make_coord(
            n_cells=3, quarantine_after=2, max_cell_retries=10,
            retry_backoff=0.0,
        )
        lease(coordinator, "w1")
        fail(coordinator, "0:0", "w1")
        lease(coordinator, "w1")
        complete(coordinator, "0:0", "w1")
        assert coordinator.breaker.strikes("w1") == 0
        lease(coordinator, "w1")
        fail(coordinator, "0:1", "w1")
        assert not coordinator.breaker.is_quarantined("w1")

    def test_deterministic_failure_from_quarantined_worker_still_aborts(
        self, make_coord
    ):
        coordinator = make_coord(
            n_cells=3, quarantine_after=1, max_cell_retries=10,
            retry_backoff=0.0,
        )
        lease(coordinator, "w1")
        fail(coordinator, "0:0", "w1")  # transient -> quarantined immediately
        assert coordinator.breaker.is_quarantined("w1")
        fail(coordinator, "0:1", "w1", kind="ValueError", error="real bug")
        assert coordinator._failure is not None


class TestErrorJournalling:
    def test_failures_are_journalled_for_the_post_mortem(
        self, make_coord, tmp_path
    ):
        path = tmp_path / "grid.jsonl"
        coordinator = make_coord(journal=path, retry_backoff=0.0)
        lease(coordinator)
        fail(coordinator, "0:0")
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        errors = [r for r in records if r.get("type") == "error"]
        assert errors == [{
            "type": "error", "cell_id": "0:0", "worker_id": "w1",
            "kind": "ConnectionResetError", "transient": True,
        }]
