"""End-to-end distributed runs: loopback workers vs the sequential runner.

The contract under test is the strongest one the subsystem makes: a grid
fanned out over worker subprocesses merges into a table *bit-identical* to
the sequential run — including after a worker is SIGKILLed mid-grid and its
leases are re-queued.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_uci_suite
from repro.datasets.base import DatasetSuite
from repro.distributed import DistributedError, GridCoordinator
from repro.exceptions import ValidationError
from repro.experiments.runner import ExperimentRunner

ALGORITHMS = ("DP", "K-means", "K-means+slsRBM")
RUNNER_KW = dict(
    n_repeats=2, n_hidden=6, n_epochs=2, batch_size=32, random_state=0
)


@pytest.fixture(scope="module")
def mini_suite():
    suite = load_uci_suite(scale=0.25, random_state=0)
    return DatasetSuite("mini", list(suite)[:2])


@pytest.fixture(scope="module")
def sequential_table(mini_suite):
    return ExperimentRunner(ALGORITHMS, **RUNNER_KW).run_suite(mini_suite)


def assert_tables_bit_identical(actual, expected):
    assert actual.to_dict() == expected.to_dict()
    for dataset in expected.dataset_order:
        for algorithm in expected.algorithm_order:
            cell_a = actual.cell(dataset, algorithm)
            cell_e = expected.cell(dataset, algorithm)
            assert cell_a.mean == cell_e.mean
            assert cell_a.variance == cell_e.variance
            for report_a, report_e in zip(cell_a.reports, cell_e.reports):
                assert report_a == report_e


class TestWorkersValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentRunner(ALGORITHMS, workers=0)

    def test_bool_workers_rejected(self):
        with pytest.raises(ValidationError, match="workers"):
            ExperimentRunner(ALGORITHMS, workers=True)

    def test_empty_address_list_rejected(self):
        with pytest.raises(ValidationError, match="must not be empty"):
            ExperimentRunner(ALGORITHMS, workers=[])

    @pytest.mark.parametrize("address", ["localhost", "host:port", ":80", "a:b:c"])
    def test_malformed_address_rejected(self, address):
        with pytest.raises(ValidationError):
            ExperimentRunner(ALGORITHMS, workers=[address])

    def test_nonpositive_lease_timeout_rejected(self):
        with pytest.raises(ValidationError, match="lease_timeout"):
            ExperimentRunner(ALGORITHMS, workers=2, lease_timeout=0.0)


class TestLoopbackBitIdentity:
    def test_two_loopback_workers_match_sequential(
        self, mini_suite, sequential_table
    ):
        runner = ExperimentRunner(ALGORITHMS, **RUNNER_KW, workers=2)
        table = runner.run_suite(mini_suite)
        assert_tables_bit_identical(table, sequential_table)
        assert runner.n_duplicate_results == 0

    def test_single_worker_matches_sequential(self, mini_suite, sequential_table):
        runner = ExperimentRunner(ALGORITHMS, **RUNNER_KW, workers=1)
        table = runner.run_suite(mini_suite)
        assert_tables_bit_identical(table, sequential_table)


@pytest.mark.slow
class TestWorkerLoss:
    def test_sigkilled_worker_mid_grid_still_matches_sequential(
        self, mini_suite, sequential_table, monkeypatch
    ):
        """SIGKILL one of two workers while it holds a lease; the grid must
        recover via lease expiry and still merge bit-identically."""
        from repro.distributed import worker as worker_module

        pool_box = []
        real_spawn = worker_module.spawn_loopback_workers

        def capturing_spawn(n_workers, coordinator_address, **kwargs):
            pool = real_spawn(n_workers, coordinator_address, **kwargs)
            pool_box.append(pool)
            return pool

        monkeypatch.setattr(
            worker_module, "spawn_loopback_workers", capturing_spawn
        )

        state = {"n_granted": 0, "killed": False}
        real_handle_lease = GridCoordinator.POST_ROUTES["/cell/lease"]

        def killing_handle_lease(coordinator, request):
            response = real_handle_lease(coordinator, request)
            if response.get("cell") is not None:
                state["n_granted"] += 1
                # By the third grant both workers have touched the grid and
                # at least one lease is live on the first worker.  Killing
                # it *before this response is delivered* guarantees a lease
                # dies with it — the cell must come back via expiry.
                if state["n_granted"] == 3 and not state["killed"]:
                    state["killed"] = True
                    pool_box[0].kill_one()
            return response

        monkeypatch.setitem(
            GridCoordinator.POST_ROUTES, "/cell/lease", killing_handle_lease
        )

        runner = ExperimentRunner(
            ALGORITHMS, **RUNNER_KW, workers=2, lease_timeout=2.0
        )
        table = runner.run_suite(mini_suite)

        assert state["killed"], "fault injection never fired"
        assert pool_box[0].n_alive <= 1
        assert_tables_bit_identical(table, sequential_table)
        # The dead worker's lease(s) were re-queued, not lost.
        assert runner.n_requeued_cells >= 1

    def test_all_workers_dead_aborts_instead_of_hanging(
        self, mini_suite, monkeypatch
    ):
        from repro.distributed import worker as worker_module

        real_spawn = worker_module.spawn_loopback_workers

        def spawn_and_kill_all(n_workers, coordinator_address, **kwargs):
            pool = real_spawn(n_workers, coordinator_address, **kwargs)
            while pool.n_alive:
                pool.kill_one()
            return pool

        monkeypatch.setattr(
            worker_module, "spawn_loopback_workers", spawn_and_kill_all
        )
        runner = ExperimentRunner(
            ALGORITHMS, **RUNNER_KW, workers=2, lease_timeout=1.0
        )
        with pytest.raises(DistributedError, match="loopback workers exited"):
            runner.run_suite(mini_suite)


class TestDistributedCacheCounters:
    def test_artifact_hits_travel_back(self, mini_suite, tmp_path):
        warm = ExperimentRunner(
            ("K-means+slsRBM",), **RUNNER_KW, artifact_dir=tmp_path
        )
        warm.run_suite(mini_suite)

        runner = ExperimentRunner(
            ("K-means+slsRBM",), **RUNNER_KW, workers=1,
            artifact_dir=tmp_path,
        )
        table = runner.run_suite(mini_suite)
        # Loopback workers share the coordinator's artifact directory, so
        # every framework fit is served from the warm-started bundles and
        # the hits are reported back over the wire.
        assert runner.n_artifact_hits > 0
        expected = warm.run_suite(mini_suite)
        assert table.to_dict() == expected.to_dict()


def test_distributed_table_roundtrips_through_json(mini_suite, sequential_table):
    import json

    payload = json.loads(json.dumps(sequential_table.to_dict()))
    from repro.experiments.runner import ExperimentTable

    rebuilt = ExperimentTable.from_dict(payload)
    assert rebuilt.to_dict() == sequential_table.to_dict()
    matrix_a = rebuilt.metric_matrix("accuracy")
    matrix_b = sequential_table.metric_matrix("accuracy")
    np.testing.assert_array_equal(matrix_a, matrix_b)
