"""Deterministic fake-clock tests for the coordinator's lease queue.

Every fault-tolerance rule — expiry, re-queue order, heartbeat renewal,
idempotent completion — is driven here by advancing an explicit clock, so
the suite never sleeps and never races.
"""

from __future__ import annotations

import pytest

from repro.distributed import CellLease, LeaseQueue


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def make_queue(clock, cells=("a", "b", "c"), lease_timeout=10.0):
    return LeaseQueue(cells, lease_timeout=lease_timeout, clock=clock)


class TestConstruction:
    def test_duplicate_cell_ids_rejected(self, clock):
        with pytest.raises(ValueError, match="duplicate cell id"):
            make_queue(clock, cells=["a", "b", "a"])

    def test_nonpositive_lease_timeout_rejected(self, clock):
        with pytest.raises(ValueError, match="lease_timeout"):
            make_queue(clock, lease_timeout=0)

    def test_initial_counters(self, clock):
        queue = make_queue(clock)
        assert queue.counters() == {
            "n_cells": 3,
            "n_pending": 3,
            "n_leased": 0,
            "n_delayed": 0,
            "n_completed": 0,
            "n_requeued": 0,
            "n_duplicates": 0,
            "n_expired_leases": 0,
            "n_retried": 0,
        }
        assert not queue.done


class TestLeasing:
    def test_fifo_dispatch_order(self, clock):
        queue = make_queue(clock)
        assert [queue.lease("w") for _ in range(3)] == ["a", "b", "c"]
        assert queue.lease("w") is None

    def test_lease_records_worker_and_deadline(self, clock):
        queue = make_queue(clock, lease_timeout=7.0)
        clock.advance(3.0)
        queue.lease("w1")
        lease = queue._leases["a"]
        assert lease == CellLease(cell_id="a", worker_id="w1", deadline=10.0)

    def test_empty_queue_returns_none_while_leased(self, clock):
        queue = make_queue(clock, cells=["only"])
        assert queue.lease("w1") == "only"
        # Nothing pending, but the grid is not done either: the caller
        # idles until the in-flight cell lands or expires.
        assert queue.lease("w2") is None
        assert not queue.done


class TestExpiry:
    def test_lease_expires_exactly_at_deadline(self, clock):
        queue = make_queue(clock, lease_timeout=10.0)
        queue.lease("w1")
        clock.advance(9.999)
        assert queue.expire_overdue() == []
        clock.advance(0.001)
        assert queue.expire_overdue() == ["a"]
        assert queue.n_requeued == 1
        assert queue.n_expired_leases == 1

    def test_expired_cells_requeue_to_front_in_order(self, clock):
        queue = make_queue(clock, cells=["a", "b", "c", "d"], lease_timeout=5.0)
        assert queue.lease("w1") == "a"
        assert queue.lease("w1") == "b"
        clock.advance(6.0)
        # Both of w1's cells lapse; they come back at the *front* of the
        # queue in their original relative order, ahead of untouched "c".
        assert queue.expire_overdue() == ["a", "b"]
        assert [queue.lease("w2") for _ in range(4)] == ["a", "b", "c", "d"]

    def test_lease_call_expires_overdue_first(self, clock):
        queue = make_queue(clock, cells=["a", "b"], lease_timeout=5.0)
        queue.lease("w1")
        queue.lease("w1")
        clock.advance(6.0)
        # No explicit expire_overdue(): the next lease() call sweeps.
        assert queue.lease("w2") == "a"
        assert queue.n_requeued == 2


class TestHeartbeat:
    def test_heartbeat_renews_all_worker_leases(self, clock):
        queue = make_queue(clock, lease_timeout=10.0)
        queue.lease("w1")
        queue.lease("w1")
        queue.lease("w2")
        clock.advance(8.0)
        assert queue.heartbeat("w1") == 2
        clock.advance(4.0)
        # w2 never heartbeat: its cell lapses; w1's renewed leases survive.
        assert queue.expire_overdue() == ["c"]
        assert queue.n_leased == 2

    def test_heartbeat_for_unknown_worker_renews_nothing(self, clock):
        queue = make_queue(clock)
        queue.lease("w1")
        assert queue.heartbeat("ghost") == 0


class TestCompletion:
    def test_complete_is_idempotent(self, clock):
        queue = make_queue(clock, cells=["a"])
        queue.lease("w1")
        assert queue.complete("a", "w1") is True
        assert queue.complete("a", "w2") is False
        assert queue.n_duplicates == 1
        assert queue.n_completed == 1
        assert queue.done

    def test_unknown_cell_raises(self, clock):
        queue = make_queue(clock)
        with pytest.raises(KeyError, match="unknown cell id"):
            queue.complete("nope", "w1")

    def test_late_completion_from_presumed_dead_worker_is_accepted(self, clock):
        queue = make_queue(clock, cells=["a"], lease_timeout=5.0)
        queue.lease("w1")
        clock.advance(6.0)
        assert queue.expire_overdue() == ["a"]
        # w1 was slow, not dead: its result arrives before anyone re-leased
        # the cell.  Accept it (saves the re-run) and drop the cell from
        # pending so it is never dispatched again.
        assert queue.complete("a", "w1") is True
        assert queue.lease("w2") is None
        assert queue.done

    def test_requeued_cell_completing_twice_keeps_first(self, clock):
        queue = make_queue(clock, cells=["a"], lease_timeout=5.0)
        queue.lease("w1")
        clock.advance(6.0)
        queue.expire_overdue()
        assert queue.lease("w2") == "a"
        assert queue.complete("a", "w2") is True
        # The original worker resurfaces with the same cell: discarded.
        assert queue.complete("a", "w1") is False
        assert queue.counters()["n_duplicates"] == 1


class TestRelease:
    def test_release_returns_leases_to_front(self, clock):
        queue = make_queue(clock, cells=["a", "b", "c"])
        queue.lease("w1")
        queue.lease("w1")
        assert queue.release("w1") == 2
        assert [queue.lease("w2") for _ in range(3)] == ["a", "b", "c"]
        assert queue.n_requeued == 2

    def test_release_without_leases_is_a_noop(self, clock):
        queue = make_queue(clock)
        assert queue.release("w1") == 0
        assert queue.n_pending == 3


class TestFullLifecycle:
    def test_grid_survives_worker_loss(self, clock):
        """The canonical recovery story, step by deterministic step."""
        queue = make_queue(clock, cells=["a", "b", "c", "d"], lease_timeout=10.0)
        assert queue.lease("w1") == "a"
        assert queue.lease("w2") == "b"
        assert queue.complete("b", "w2") is True
        assert queue.lease("w2") == "c"
        # w1 dies silently holding "a"; w2 keeps heartbeating.
        clock.advance(8.0)
        queue.heartbeat("w2")
        clock.advance(4.0)
        assert queue.complete("c", "w2") is True
        assert queue.lease("w2") == "a"  # expired, re-queued ahead of "d"
        assert queue.complete("a", "w2") is True
        assert queue.lease("w2") == "d"
        assert queue.complete("d", "w2") is True
        assert queue.done
        counters = queue.counters()
        assert counters["n_completed"] == 4
        assert counters["n_requeued"] == 1
        assert counters["n_duplicates"] == 0
