"""Ablations: voting strategy and ensemble size of the integration.

DESIGN.md calls out two further design choices of the multi-clustering
integration: unanimous vs. majority voting, and the number/diversity of base
clusterers.  Both are swept here on one dataset of each suite.
"""

from __future__ import annotations

from conftest import emit, DATASETS_II_SETTINGS
from repro.core.config import FrameworkConfig
from repro.datasets import load_uci_dataset
from repro.experiments.ablation import (
    raw_baseline,
    run_clusterer_count_ablation,
    run_voting_ablation,
)


def _config():
    return FrameworkConfig(
        model="sls_rbm",
        n_hidden=DATASETS_II_SETTINGS["n_hidden"],
        n_epochs=15,
        batch_size=DATASETS_II_SETTINGS["batch_size"],
        learning_rate=1e-3,
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        random_state=0,
        extra={
            "supervision_learning_rate": DATASETS_II_SETTINGS["supervision_learning_rate"]
        },
    )


def bench_ablation_voting(benchmark):
    """Unanimous vs. majority voting (slsRBM, IR analogue)."""
    dataset = load_uci_dataset("IR", scale=0.8, random_state=0)

    def run():
        return run_voting_ablation(dataset, base_config=_config())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = raw_baseline(dataset)
    emit("\n================ Ablation: voting strategy (slsRBM, IR analogue) ================")
    emit(f"raw K-means accuracy: {baseline['accuracy']:.4f}")
    for voting, profile in results.items():
        emit(f"{voting:<10} accuracy={profile['accuracy']:.4f} fmi={profile['fmi']:.4f}")


def bench_ablation_ensemble_size(benchmark):
    """Number/diversity of base clusterers (slsRBM, BCW analogue)."""
    dataset = load_uci_dataset("BCW", scale=0.5, random_state=0)
    ensembles = (
        ("kmeans",),
        ("dp", "kmeans"),
        ("dp", "kmeans", "ap"),
        ("dp", "kmeans", "ap", "agglomerative"),
    )

    def run():
        return run_clusterer_count_ablation(
            dataset, base_config=_config(), ensembles=ensembles
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("\n================ Ablation: integration ensemble (slsRBM, BCW analogue) ================")
    for name, profile in results.items():
        emit(f"{name:<30} accuracy={profile['accuracy']:.4f} rand={profile['rand']:.4f}")
