"""Training-side perf harness: kernels, clustering and runner scaling.

Thin wrapper over :mod:`repro.bench` (the same engine behind
``python -m repro bench``) so the training hot paths sit next to the other
``bench_*`` modules and emit through the shared ``emit`` channel.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_training.py [--smoke] \
        [--out BENCH_training.json]

The JSON report is the tracked perf trajectory: each section records the
optimised kernel against the kept reference implementation
(:mod:`repro.rbm.gradients_reference` and the legacy DensityPeaks replica),
plus sequential-vs-``n_jobs`` runner wall-clock.
"""

from __future__ import annotations

import argparse

try:
    from benchmarks.conftest import emit
except ImportError:  # direct `python benchmarks/bench_training.py` invocation
    emit = print

from repro.bench import (
    format_summary,
    run_training_benchmarks,
    write_benchmark_report,
)


def bench_training_summary():
    """Smoke-size run of every section, emitted through the bench channel."""
    payload = run_training_benchmarks(smoke=True)
    emit("\n================ training ================")
    emit(format_summary(payload))
    assert payload["results"]["gradient_kernel"]["speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--out", default="BENCH_training.json")
    parser.add_argument("--n-jobs", type=int, default=4)
    args = parser.parse_args(argv)
    payload = run_training_benchmarks(smoke=args.smoke, n_jobs=args.n_jobs)
    out = write_benchmark_report(payload, args.out)
    print(format_summary(payload))
    print(f"benchmark report written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
