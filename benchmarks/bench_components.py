"""Micro-benchmarks of the core computational kernels.

These are conventional pytest-benchmark timings (multiple rounds) of the
pieces every experiment is built from: the CD-1 step, the supervision
gradient, the three clusterers and the external metrics.  They are the place
to look when optimising the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import AffinityPropagation, DensityPeaks, KMeans
from repro.datasets.preprocessing import standardize
from repro.datasets.synthetic import make_high_dimensional_mixture
from repro.metrics import evaluate_clustering
from repro.rbm import GaussianRBM, SlsGRBM
from repro.rbm.gradients import constrict_disperse_gradient
from repro.supervision import LocalSupervision, MultiClusteringIntegration


@pytest.fixture(scope="module")
def medium_data():
    data, labels = make_high_dimensional_mixture(
        250, 150, 3, separation=1.5, random_state=0
    )
    return standardize(data), labels


@pytest.fixture(scope="module")
def fitted_grbm(medium_data):
    data, _ = medium_data
    model = GaussianRBM(48, learning_rate=1e-3, n_epochs=1, batch_size=64, random_state=0)
    model.initialize(data)
    return model, data


def bench_cd1_step(benchmark, fitted_grbm):
    """One CD-1 statistics computation on a 64-sample minibatch."""
    model, data = fitted_grbm
    batch = data[:64]
    benchmark(model.contrastive_divergence, batch)


def bench_supervision_gradient(benchmark, medium_data, fitted_grbm):
    """Constrict/disperse gradient over 300 covered samples, 3 clusters."""
    model, data = fitted_grbm
    _, labels = medium_data
    index_sets = {int(k): np.flatnonzero(labels == k) for k in np.unique(labels)}
    benchmark(
        constrict_disperse_gradient,
        data,
        model.weights_,
        model.hidden_bias_,
        index_sets,
    )


def bench_sls_grbm_epoch(benchmark, medium_data):
    """One full slsGRBM training epoch with supervision attached."""
    data, labels = medium_data
    supervision = LocalSupervision.from_full_partition(labels)
    model = SlsGRBM(48, learning_rate=1e-4, n_epochs=1, batch_size=64, random_state=0)
    model.initialize(data)
    model.set_supervision(data, supervision)

    def one_epoch():
        for start in range(0, data.shape[0], 64):
            model.partial_fit(data[start : start + 64])

    benchmark(one_epoch)


def bench_kmeans(benchmark, medium_data):
    """K-means (10 restarts) on 300 x 200 data."""
    data, _ = medium_data
    benchmark(lambda: KMeans(3, random_state=0).fit_predict(data))


def bench_density_peaks(benchmark, medium_data):
    """Density Peaks on 300 x 200 data."""
    data, _ = medium_data
    benchmark(lambda: DensityPeaks(3).fit_predict(data))


def bench_affinity_propagation(benchmark, medium_data):
    """Affinity Propagation (median preference) on 300 x 200 data."""
    data, _ = medium_data
    benchmark(lambda: AffinityPropagation(random_state=0).fit_predict(data))


def bench_multi_clustering_integration(benchmark, medium_data):
    """Full DP + K-means + AP integration with unanimous voting."""
    data, _ = medium_data
    benchmark(
        lambda: MultiClusteringIntegration(3, random_state=0).fit_supervision(data)
    )


def bench_metrics(benchmark, medium_data):
    """All external metrics for one clustering of 300 samples."""
    _, labels = medium_data
    rng = np.random.default_rng(0)
    predicted = rng.integers(0, 3, labels.shape[0])
    benchmark(evaluate_clustering, labels, predicted)
