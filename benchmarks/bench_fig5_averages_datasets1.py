"""Figure 5: average accuracy / purity / FMI per algorithm on datasets I."""

from __future__ import annotations

from conftest import emit
from repro.experiments.figures import figure_average_bars
from repro.experiments.reporting import format_summary_table


def bench_fig5_averages(benchmark, datasets1_table):
    """Bar heights of Fig. 5 (per-algorithm averages over datasets I)."""
    table = datasets1_table
    bars = benchmark(
        lambda: figure_average_bars(table, ("accuracy", "purity", "fmi"))
    )
    assert set(bars) == {"accuracy", "purity", "fmi"}
    emit()
    emit(
        format_summary_table(
            bars, title="Fig. 5 (measured): per-algorithm averages, datasets I"
        )
    )
