"""Table V: purity on datasets I (MSRA-MM analogues)."""

from __future__ import annotations

from conftest import print_full_table, print_paper_comparison
from repro.experiments.expected import PAPER_TABLE_V_PURITY_AVERAGES


def bench_table_v_purity(benchmark, datasets1_table):
    """Purity rows of Table V plus paper-vs-measured averages."""
    table = datasets1_table
    rows = benchmark(lambda: table.rows("purity"))
    assert rows[-1]["dataset"] == "Average"

    print_full_table(table, "purity", "Table V (measured): purity, datasets I")
    print_paper_comparison(
        "Table V averages: purity, datasets I",
        table.column_averages("purity"),
        PAPER_TABLE_V_PURITY_AVERAGES,
    )
