"""Ablation: effect of the balance coefficient eta (Eq. 13).

Not a paper table; DESIGN.md lists eta as a key design choice.  Sweeps eta on
one MSRA-MM-like dataset and one UCI-like dataset and prints the K-means
accuracy profile, with the raw-data baseline for reference.
"""

from __future__ import annotations

from conftest import emit, DATASETS_I_SETTINGS, DATASETS_II_SETTINGS
from repro.core.config import FrameworkConfig
from repro.datasets import load_msra_mm_dataset, load_uci_dataset
from repro.experiments.ablation import raw_baseline, run_eta_ablation

_ETAS = (0.2, 0.4, 0.6, 0.8)


def _grbm_config():
    return FrameworkConfig(
        model="sls_grbm",
        n_hidden=DATASETS_I_SETTINGS["n_hidden"],
        n_epochs=15,
        batch_size=DATASETS_I_SETTINGS["batch_size"],
        learning_rate=1e-4,
        supervision_preprocessing="standardize",
        random_state=0,
        extra={
            "supervision_learning_rate": DATASETS_I_SETTINGS["supervision_learning_rate"]
        },
    )


def _rbm_config():
    return FrameworkConfig(
        model="sls_rbm",
        n_hidden=DATASETS_II_SETTINGS["n_hidden"],
        n_epochs=15,
        batch_size=DATASETS_II_SETTINGS["batch_size"],
        learning_rate=1e-3,
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        random_state=0,
        extra={
            "supervision_learning_rate": DATASETS_II_SETTINGS["supervision_learning_rate"]
        },
    )


def bench_ablation_eta_sls_grbm(benchmark):
    """Eta sweep for slsGRBM on the WA analogue (datasets I)."""
    dataset = load_msra_mm_dataset("WA", scale=0.25, random_state=0)

    def run():
        return run_eta_ablation(dataset, etas=_ETAS, base_config=_grbm_config())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = raw_baseline(dataset)
    emit("\n================ Ablation: eta (slsGRBM, WA analogue) ================")
    emit(f"raw K-means accuracy: {baseline['accuracy']:.4f}")
    for eta, profile in results.items():
        emit(f"eta={eta:.1f}: accuracy={profile['accuracy']:.4f} fmi={profile['fmi']:.4f}")


def bench_ablation_eta_sls_rbm(benchmark):
    """Eta sweep for slsRBM on the BCW analogue (datasets II)."""
    dataset = load_uci_dataset("BCW", scale=0.5, random_state=0)

    def run():
        return run_eta_ablation(dataset, etas=_ETAS, base_config=_rbm_config())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = raw_baseline(dataset)
    emit("\n================ Ablation: eta (slsRBM, BCW analogue) ================")
    emit(f"raw K-means accuracy: {baseline['accuracy']:.4f}")
    for eta, profile in results.items():
        emit(f"eta={eta:.1f}: accuracy={profile['accuracy']:.4f} rand={profile['rand']:.4f}")
