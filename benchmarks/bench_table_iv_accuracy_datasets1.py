"""Table IV: clustering accuracy on datasets I (MSRA-MM analogues).

Regenerates the 9-dataset x 9-algorithm accuracy grid, prints it in the
paper's layout next to the paper's reported averages, and checks that the
qualitative shape (X+slsGRBM > X+GRBM and > X) is preserved.
"""

from __future__ import annotations

from conftest import print_full_table, print_paper_comparison
from repro.experiments.expected import PAPER_TABLE_IV_ACCURACY, paper_average


def bench_table_iv_accuracy(benchmark, datasets1_table):
    """Accuracy rows of Table IV plus paper-vs-measured averages."""
    table = datasets1_table

    def extract():
        return table.rows("accuracy")

    rows = benchmark(extract)
    assert rows[-1]["dataset"] == "Average"

    print_full_table(table, "accuracy", "Table IV (measured): accuracy, datasets I")
    print_paper_comparison(
        "Table IV averages: accuracy, datasets I",
        table.column_averages("accuracy"),
        paper_average(PAPER_TABLE_IV_ACCURACY),
    )
