"""Shared fixtures for the benchmark harness.

Each paper table/figure has its own ``bench_*`` module, but they all read
from two expensive shared computations — the full algorithm grid over
datasets I (MSRA-MM analogues) and over datasets II (UCI analogues) — which
are produced once per session by the fixtures below.

Environment knobs (all optional):

* ``REPRO_BENCH_SCALE``    — size multiplier for the datasets-I suite
  (default 0.2 so the whole harness completes in a few minutes; 1.0
  reproduces the paper's full instance/feature counts at several times the
  runtime).
* ``REPRO_BENCH_SCALE2``   — size multiplier for the datasets-II suite
  (default 0.4; 1.0 uses the paper's full UCI shapes).
* ``REPRO_BENCH_EPOCHS``   — RBM training epochs (default 25 for datasets I,
  20 for datasets II).
* ``REPRO_BENCH_REPEATS``  — repeats per stochastic cell (default 1).

The formatted tables are written through ``emit`` (the real stdout), so they
appear in the console / ``tee`` output even though pytest captures test
stdout by default.
"""

from __future__ import annotations

import os
import sys
import warnings

import pytest

from repro.datasets import load_msra_mm_suite, load_uci_suite
from repro.experiments.expected import compare_shape, paper_average
from repro.experiments.grids import DATASETS_I_ALGORITHMS, DATASETS_II_ALGORITHMS
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentRunner

warnings.filterwarnings("ignore")


_TABLES_PATH = os.environ.get("REPRO_BENCH_TABLES", "/root/repo/bench_tables.txt")


def emit(*args) -> None:
    """Print to the real stdout and mirror into the tables file.

    pytest captures test output at the file-descriptor level, so the
    regenerated paper tables are additionally appended to ``REPRO_BENCH_TABLES``
    (default ``bench_tables.txt``) to make sure they survive any capture mode.
    """
    text = " ".join(str(a) for a in args)
    print(text, file=sys.__stdout__, flush=True)
    try:
        with open(_TABLES_PATH, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")
    except OSError:
        pass


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    return default if value is None else float(value)


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return default if value is None else int(value)


#: Model/grid settings used by the datasets-I (slsGRBM) benches.  Calibrated
#: so the paper's qualitative shape is visible at REPRO_BENCH_SCALE=0.5.
DATASETS_I_SETTINGS = dict(
    n_hidden=48,
    batch_size=64,
    supervision_learning_rate=8e-3,
)

#: Model/grid settings used by the datasets-II (slsRBM) benches.
DATASETS_II_SETTINGS = dict(
    n_hidden=32,
    batch_size=32,
    supervision_learning_rate=5e-3,
)


@pytest.fixture(scope="session")
def datasets1_table():
    """Full 9x9 experiment grid over the MSRA-MM-like suite (Tables IV-VI)."""
    scale = _env_float("REPRO_BENCH_SCALE", 0.2)
    n_epochs = _env_int("REPRO_BENCH_EPOCHS", 20)
    n_repeats = _env_int("REPRO_BENCH_REPEATS", 1)
    suite = load_msra_mm_suite(scale=scale, random_state=0)
    runner = ExperimentRunner(
        DATASETS_I_ALGORITHMS,
        n_repeats=n_repeats,
        n_hidden=DATASETS_I_SETTINGS["n_hidden"],
        n_epochs=n_epochs,
        batch_size=DATASETS_I_SETTINGS["batch_size"],
        random_state=0,
        config_overrides={
            "extra": {
                "supervision_learning_rate": DATASETS_I_SETTINGS[
                    "supervision_learning_rate"
                ]
            }
        },
    )
    return runner.run_suite(suite, name="datasets-I")


@pytest.fixture(scope="session")
def datasets2_table():
    """Full 9x6 experiment grid over the UCI-like suite (Tables VII-IX)."""
    scale = _env_float("REPRO_BENCH_SCALE2", 0.4)
    n_epochs = _env_int("REPRO_BENCH_EPOCHS", 20)
    n_repeats = _env_int("REPRO_BENCH_REPEATS", 1)
    suite = load_uci_suite(scale=scale, random_state=0)
    runner = ExperimentRunner(
        DATASETS_II_ALGORITHMS,
        n_repeats=n_repeats,
        n_hidden=DATASETS_II_SETTINGS["n_hidden"],
        n_epochs=n_epochs,
        batch_size=DATASETS_II_SETTINGS["batch_size"],
        random_state=0,
        config_overrides={
            "extra": {
                "supervision_learning_rate": DATASETS_II_SETTINGS[
                    "supervision_learning_rate"
                ]
            }
        },
    )
    return runner.run_suite(suite, name="datasets-II")


def print_paper_comparison(title, measured_averages, paper_averages):
    """Print measured vs paper column averages and the shape checklist."""
    emit(f"\n================ {title} ================")
    emit(f"{'Algorithm':<18} {'measured':>10} {'paper':>10}")
    for algorithm, paper_value in paper_averages.items():
        measured = measured_averages.get(algorithm, float('nan'))
        emit(f"{algorithm:<18} {measured:>10.4f} {paper_value:>10.4f}")
    shape = compare_shape(measured_averages, paper_averages)
    for base, checks in shape.items():
        emit(
            f"shape[{base}]: sls>plain measured={checks['sls_beats_plain_measured']} "
            f"(paper={checks['sls_beats_plain_paper']}), "
            f"sls>raw measured={checks['sls_beats_raw_measured']} "
            f"(paper={checks['sls_beats_raw_paper']})"
        )


def print_full_table(table, metric, title):
    """Print the complete per-dataset table in the paper's layout."""
    emit()
    emit(format_table(table, metric, title=title))


__all__ = [
    "emit",
    "print_paper_comparison",
    "print_full_table",
    "paper_average",
    "DATASETS_I_SETTINGS",
    "DATASETS_II_SETTINGS",
]


@pytest.fixture(autouse=True)
def _uncaptured_output(capfd):
    """Disable pytest's fd-level capture inside each bench.

    The benches print the regenerated paper tables; with the default "fd"
    capture those lines would only be visible on failure, so capture is
    switched off for the duration of every benchmark test.
    """
    with capfd.disabled():
        yield
