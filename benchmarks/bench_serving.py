"""Benchmarks of the persistence + serving subsystem.

Measures the costs that matter for the train/serve split:

* **cold load** — rebuilding a fitted framework from its artifact bundle
  (what a serving replica pays at startup);
* **uncached encode** — a full preprocess + micro-batched forward pass;
* **cached encode** — the same request answered from the LRU feature cache;
* **concurrent fusion** — N closed-loop client threads issuing small encode
  requests, served unfused (one matmul each, serialised on the model's
  compute lock) vs through the :class:`~repro.serving.BatchFuser` (requests
  coalesced into shared stacked matmuls).  Fused results are checked
  bit-identical to direct encodes before any number is reported;
* **overload shedding** — the HTTP front end with admission control armed
  (``max_in_flight``) under a client flood: how cheap a 503 rejection is
  compared to an accepted encode, and the accepted/shed split;
* **async/shard scaling** — the scale-out stack (asyncio front end over a
  multi-process :class:`~repro.serving.shard.ShardPool`) under 120
  concurrent keep-alive connections, run with 1 and 2 shard workers.
  Every response is checked bit-identical to an unfused sequential encode
  before the throughputs are reported.

Runs standalone without pytest and writes the machine-readable report::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --out BENCH_serving.json

The pytest-style ``bench_*`` wrappers remain for the interactive harness.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_high_dimensional_mixture
from repro.persistence import load_framework, save_framework
from repro.serving import BatchFuser, EncodingService

try:  # the shared bench console helper needs pytest; fall back to print
    from benchmarks.conftest import emit
except ImportError:  # pragma: no cover - standalone / CI bench job
    def emit(*args) -> None:
        print(" ".join(str(a) for a in args), file=sys.__stdout__, flush=True)

try:
    import pytest
except ImportError:  # pragma: no cover - standalone / CI bench job
    pytest = None


# ----------------------------------------------------------------- fixtures
def _make_serving_setup(artifact_dir, *, smoke: bool = False):
    """A fitted slsGRBM framework, its artifact bundle and an encode matrix."""
    n_samples, n_features = (300, 80) if smoke else (600, 200)
    data, _ = make_high_dimensional_mixture(
        n_samples, n_features, 3, separation=1.5, random_state=0
    )
    config = FrameworkConfig(
        model="sls_grbm",
        n_hidden=64,
        n_epochs=3,
        batch_size=64,
        random_state=0,
        extra={"supervision_learning_rate": 8e-3},
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=3)
    framework.fit(data)
    bundle = save_framework(framework, Path(artifact_dir) / "sls_grbm")
    return framework, bundle, data


if pytest is not None:

    @pytest.fixture(scope="module")
    def serving_setup(tmp_path_factory):
        return _make_serving_setup(tmp_path_factory.mktemp("artifacts"))

    def bench_cold_load(benchmark, serving_setup):
        """Artifact bundle -> ready-to-serve framework (manifest, checksum, npz)."""
        _, bundle, _ = serving_setup
        benchmark(load_framework, bundle)

    def bench_encode_uncached(benchmark, serving_setup):
        """600 x 200 encode with the cache bypassed (full forward pass)."""
        _, bundle, data = serving_setup
        service = EncodingService(max_batch_size=256)
        service.load("m", bundle)
        benchmark(service.encode, "m", data, use_cache=False)

    def bench_encode_cached(benchmark, serving_setup):
        """The same encode answered from the LRU feature cache."""
        _, bundle, data = serving_setup
        service = EncodingService(max_batch_size=256)
        service.load("m", bundle)
        service.warm("m", data)
        benchmark(service.encode, "m", data)

    def bench_serving_summary(serving_setup):
        """One-line summary: cold load, cache win and the fusion speedup."""
        framework, bundle, data = serving_setup
        sections = _run_sections(framework, bundle, data, smoke=True)
        emit("\n================ serving ================")
        emit(_format_summary_lines(sections))
        assert sections["cache"]["cached_samples_per_second"] > sections["cache"][
            "uncached_samples_per_second"
        ]
        assert sections["concurrent_fusion"]["bit_identical"]


# -------------------------------------------------- concurrent fusion bench
def _run_clients(n_clients: int, client_body) -> float:
    """Run ``client_body(index)`` from N barrier-started threads; seconds."""
    barrier = threading.Barrier(n_clients + 1)
    errors: list[BaseException] = []

    def client(index: int) -> None:
        barrier.wait()
        try:
            client_body(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def run_concurrent_fusion_bench(
    framework,
    *,
    n_clients: int = 8,
    requests_per_client: int = 60,
    rows_per_request: int = 2,
    pipeline_depth: int = 8,
    max_wait_ms: float = 4.0,
    repeats: int = 5,
) -> dict:
    """Fused vs unfused concurrent throughput on the serving fast path.

    Serves the framework's bare RBM (the scratch-buffer fast path) to N
    concurrent clients issuing small distinct request matrices — the
    classic online-serving shape where per-request overhead, not FLOPs,
    limits throughput.  Unfused clients call ``service.encode`` directly
    (blocking, serialised on the model's compute lock); fused clients drive
    the :class:`BatchFuser` ticket API with ``pipeline_depth`` requests in
    flight, the way a real async encode tier keeps its connection pipeline
    full.  The cache is disabled on both sides, timings are best-of-
    ``repeats``, and every fused result is verified bit-identical to a
    direct encode before any number is reported.

    ``rows_per_request`` must be >= 2 for the bit-equivalence check: BLAS
    dispatches a different kernel (GEMV) for single-row matmuls, so a 1-row
    request computed inside a fused GEMM can differ from its unfused result
    in the last bits (it stays allclose at ~1e-16).
    """
    from collections import deque

    model = framework.model_
    n_features = model.weights_.shape[0]
    rng = np.random.default_rng(7)
    requests = [
        [
            np.ascontiguousarray(
                rng.random((rows_per_request, n_features)), dtype=model.weights_.dtype
            )
            for _ in range(requests_per_client)
        ]
        for _ in range(n_clients)
    ]
    total_rows = n_clients * requests_per_client * rows_per_request

    # --- unfused: every client calls the service directly ------------------
    service = EncodingService(cache_entries=0)
    service.register("m", model)

    def unfused_one(client_index: int) -> None:
        for matrix in requests[client_index]:
            service.encode("m", matrix, use_cache=False)

    _run_clients(n_clients, unfused_one)  # warmup: scratch buffers, threads
    unfused_seconds = min(
        _run_clients(n_clients, unfused_one) for _ in range(repeats)
    )

    # --- fused: the same traffic through the BatchFuser --------------------
    fused_seconds = float("inf")
    fused_results: list[list[np.ndarray]] = []
    stats: dict = {}
    for repeat in range(repeats + 1):  # first fused pass is an untimed warmup
        fused_service = EncodingService(cache_entries=0)
        fused_service.register("m", model)
        fuser = BatchFuser(
            fused_service,
            max_batch_rows=n_clients * rows_per_request,
            max_wait_ms=max_wait_ms,
            use_cache=False,
        )
        results: list[list[np.ndarray]] = [[] for _ in range(n_clients)]

        def fused_one(client_index: int) -> None:
            pending: deque = deque()
            collect = results[client_index].append
            for matrix in requests[client_index]:
                pending.append(fuser.submit("m", matrix))
                if len(pending) >= pipeline_depth:
                    collect(fuser.wait_for("m", pending.popleft()))
            while pending:
                collect(fuser.wait_for("m", pending.popleft()))

        seconds = _run_clients(n_clients, fused_one)
        fuser.close()
        if repeat == 0:
            continue
        if seconds < fused_seconds:
            fused_seconds = seconds
            fused_results = results
            stats = fused_service.stats("m")

    # --- bit-equivalence: fused bytes == direct encode bytes ---------------
    bit_identical = True
    reference_service = EncodingService(cache_entries=0)
    reference_service.register("m", model)
    for client_index in range(n_clients):
        for matrix, fused in zip(requests[client_index], fused_results[client_index]):
            direct = reference_service.encode("m", matrix, use_cache=False)
            if fused.dtype != direct.dtype or not np.array_equal(fused, direct):
                bit_identical = False

    return {
        "n_clients": n_clients,
        "requests_per_client": requests_per_client,
        "rows_per_request": rows_per_request,
        "pipeline_depth": pipeline_depth,
        "n_features": int(n_features),
        "n_hidden": int(model.weights_.shape[1]),
        "max_wait_ms": max_wait_ms,
        "unfused_seconds": unfused_seconds,
        "fused_seconds": fused_seconds,
        "unfused_samples_per_second": total_rows / unfused_seconds,
        "fused_samples_per_second": total_rows / fused_seconds,
        "fused_over_unfused": unfused_seconds / fused_seconds,
        "fusion_ratio": stats["fusion_ratio"],
        "n_flushes": stats["n_flushes"],
        "mean_queue_ms": stats["mean_queue_seconds"] * 1e3,
        "bit_identical": bit_identical,
    }


# ------------------------------------------------------------ overload bench
def run_overload_bench(
    framework,
    *,
    max_in_flight: int = 2,
    n_clients: int = 8,
    requests_per_client: int = 25,
    rows_per_request: int = 4,
    shed_probe_requests: int = 200,
) -> dict:
    """Admission control under flood: shed cost vs accepted cost.

    Serves the framework over the real HTTP front end with
    ``max_in_flight`` admission slots and floods it from ``n_clients``
    closed-loop threads — more clients than slots, so a fraction of the
    requests is shed with 503 + ``Retry-After`` while the rest encode
    normally.  A separate deterministic probe fills every slot via
    ``try_admit`` and times pure rejections, measuring the fast path an
    overloaded server falls back to: shedding must stay orders of
    magnitude cheaper than computing.
    """
    import json as json_module
    import urllib.error
    import urllib.request

    from repro.serving.http import build_server

    model = framework.model_
    n_features = model.weights_.shape[0]
    rng = np.random.default_rng(11)
    matrix = rng.random((rows_per_request, n_features)).tolist()
    payload = json_module.dumps({"model": "m", "data": matrix,
                                 "use_cache": False}).encode("utf-8")

    service = EncodingService(cache_entries=0)
    service.register("m", model)
    fuser = BatchFuser(service, max_batch_rows=n_clients * rows_per_request,
                       max_wait_ms=2.0, use_cache=False)
    server = build_server(service, fuser=fuser, port=0,
                          max_in_flight=max_in_flight, retry_after=0.05)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}/encode"

    def post_once() -> int:
        request = urllib.request.Request(
            url, data=payload, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                response.read()
                return response.status
        except urllib.error.HTTPError as exc:
            exc.read()
            return exc.code

    try:
        # --- accepted-request latency (no contention) ----------------------
        for _ in range(5):  # warmup: scratch buffers, keep-alive, fuser
            post_once()
        start = time.perf_counter()
        for _ in range(20):
            post_once()
        accepted_latency_ms = (time.perf_counter() - start) / 20 * 1e3

        # --- pure-shed latency: every slot occupied ------------------------
        for _ in range(max_in_flight):
            assert server.try_admit()
        start = time.perf_counter()
        for _ in range(shed_probe_requests):
            status = post_once()
            assert status == 503
        shed_latency_ms = (
            (time.perf_counter() - start) / shed_probe_requests * 1e3
        )
        for _ in range(max_in_flight):
            server.release_request()

        # --- flood: more clients than slots --------------------------------
        statuses: list[list[int]] = [[] for _ in range(n_clients)]

        def flood_one(client_index: int) -> None:
            for _ in range(requests_per_client):
                statuses[client_index].append(post_once())

        flood_seconds = _run_clients(n_clients, flood_one)
        flat = [status for per_client in statuses for status in per_client]
        n_accepted = sum(1 for status in flat if status == 200)
        n_shed = sum(1 for status in flat if status == 503)
        admission = server.admission.as_dict()
    finally:
        fuser.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    return {
        "max_in_flight": max_in_flight,
        "n_clients": n_clients,
        "requests_per_client": requests_per_client,
        "rows_per_request": rows_per_request,
        "accepted_latency_ms": accepted_latency_ms,
        "shed_latency_ms": shed_latency_ms,
        "shed_over_accepted": shed_latency_ms / accepted_latency_ms,
        "flood_seconds": flood_seconds,
        "flood_n_accepted": n_accepted,
        "flood_n_shed": n_shed,
        "flood_shed_fraction": n_shed / max(1, len(flat)),
        "accepted_requests_per_second": n_accepted / flood_seconds,
        "peak_in_flight": admission["peak_in_flight"],
        "n_deadline_shed": admission["n_deadline_shed"],
    }


# ------------------------------------------------- async/shard scaling bench
async def _async_post_raw(reader, writer, payload: bytes):
    """One keep-alive POST /encode over an open asyncio connection."""
    head = (
        "POST /encode HTTP/1.1\r\nHost: bench\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    return status, await reader.readexactly(length)


def run_async_shard_scaling_bench(
    bundle,
    data,
    *,
    n_connections: int = 120,
    requests_per_connection: int = 2,
    rows_per_request: int = 4,
    n_models: int = 4,
    worker_counts: tuple = (1, 2),
) -> dict:
    """Async front end + shard pool under 100+ concurrent connections.

    Builds the scale-out serving stack — ``AsyncEncodingServer`` in front
    of a :class:`~repro.serving.shard.ShardPool` — and drives it with an
    asyncio load generator holding ``n_connections`` concurrent keep-alive
    connections on one selector loop, once per entry in ``worker_counts``
    (the 1-worker run is the sharding baseline).  Every response is checked
    bit-identical against an unfused sequential ``service.encode`` of the
    same rows before any number is reported; ``rows_per_request`` must stay
    >= 2 so the per-shard fuser's stacked GEMM matches the unfused GEMM
    kernel (the 1-row GEMV caveat, see the fusion bench).

    On a single-core host the 2-worker run mostly measures that sharding
    does not *cost* throughput; real scaling needs real cores — the report
    carries ``cpu_count`` so readers can judge the numbers honestly.
    """
    import asyncio
    import json as json_module

    from repro.serving.async_http import build_async_server
    from repro.serving.http import ServingGateway
    from repro.serving.shard import ShardPool

    models = [f"m{index}" for index in range(n_models)]
    rows = np.asarray(data[:rows_per_request], dtype=float)
    payload = json_module.dumps(
        {"model": "MODEL", "data": rows.tolist(), "use_cache": False}
    )
    payloads = {
        name: payload.replace('"MODEL"', f'"{name}"').encode("utf-8")
        for name in models
    }

    reference = EncodingService(cache_entries=0)
    reference.load("ref", bundle)
    expected = reference.encode("ref", rows, use_cache=False)

    async def connection_worker(port: int, index: int, n_requests: int) -> list:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        bodies = []
        try:
            for request_index in range(n_requests):
                name = models[(index + request_index) % len(models)]
                bodies.append(await _async_post_raw(reader, writer,
                                                    payloads[name]))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
        return bodies

    async def drive(port: int, connections: int, per_connection: int) -> list:
        tasks = [
            asyncio.create_task(connection_worker(port, index, per_connection))
            for index in range(connections)
        ]
        return await asyncio.gather(*tasks)

    bit_identical = True
    scaling = []
    for n_workers in worker_counts:
        pool = ShardPool({name: str(bundle) for name in models}, n_workers)
        try:
            gateway = ServingGateway(pool)
        except BaseException:
            pool.close()
            raise
        server = build_async_server(gateway=gateway, port=0)
        try:
            server.start()
            port = server.server_address[1]
            # Warmup: scratch buffers + per-thread worker connections.
            asyncio.run(drive(port, len(models), 1))
            start = time.perf_counter()
            per_connection = asyncio.run(
                drive(port, n_connections, requests_per_connection)
            )
            seconds = time.perf_counter() - start
        finally:
            server.shutdown()  # drains, then closes the gateway + pool
            server.server_close()

        n_ok = 0
        for bodies in per_connection:
            for status, raw in bodies:
                if status != 200:
                    raise RuntimeError(
                        f"scaling bench got HTTP {status}: {raw[:200]!r}"
                    )
                features = np.asarray(
                    json_module.loads(raw)["features"], dtype=expected.dtype
                )
                if not np.array_equal(features, expected):
                    bit_identical = False
                n_ok += 1
        total = n_connections * requests_per_connection
        if n_ok != total:
            raise RuntimeError(f"expected {total} responses, got {n_ok}")
        scaling.append({
            "n_workers": n_workers,
            "seconds": seconds,
            "requests_per_second": total / seconds,
        })

    return {
        "n_connections": n_connections,
        "requests_per_connection": requests_per_connection,
        "rows_per_request": rows_per_request,
        "n_models": n_models,
        "bit_identical": bit_identical,
        "scaling": scaling,
        "throughput_scaling": (
            scaling[-1]["requests_per_second"]
            / scaling[0]["requests_per_second"]
        ),
    }


# ------------------------------------------------------------------ sections
def _run_sections(framework, bundle, data, *, smoke: bool, online_framework=None) -> dict:
    start = time.perf_counter()
    load_framework(bundle)
    cold_load_seconds = time.perf_counter() - start

    service = EncodingService(max_batch_size=256)
    service.load("m", bundle)
    rounds = 10 if smoke else 20
    start = time.perf_counter()
    for _ in range(rounds):
        service.encode("m", data, use_cache=False)
    uncached = rounds * data.shape[0] / (time.perf_counter() - start)

    service.warm("m", data)
    start = time.perf_counter()
    for _ in range(rounds):
        service.encode("m", data)
    cached = rounds * data.shape[0] / (time.perf_counter() - start)

    # The fusion scenario deliberately uses a small "online" model (the
    # smoke-sized framework): tiny concurrent requests against a compact
    # encoder are the per-request-overhead-dominated regime batch fusion
    # exists for.  The big model above still measures cold load and the
    # cache win.
    fusion_model = online_framework if online_framework is not None else framework
    fusion = run_concurrent_fusion_bench(
        fusion_model,
        requests_per_client=30 if smoke else 80,
    )
    # Secondary scenario: strictly synchronous closed-loop clients (one
    # request in flight each) with larger requests — the pessimal case for
    # coalescing, reported for transparency.
    fusion_sync = run_concurrent_fusion_bench(
        fusion_model,
        requests_per_client=15 if smoke else 40,
        rows_per_request=16,
        pipeline_depth=1,
        repeats=2,
    )
    overload = run_overload_bench(
        fusion_model,
        requests_per_client=10 if smoke else 25,
        shed_probe_requests=50 if smoke else 200,
    )
    # The scale-out stack always runs at >= 100 connections — that IS the
    # scenario; shrinking it in smoke mode would measure nothing.
    async_shard = run_async_shard_scaling_bench(
        bundle,
        data,
        requests_per_connection=2 if smoke else 4,
    )
    return {
        "cold_load": {"seconds": cold_load_seconds},
        "cache": {
            "rounds": rounds,
            "uncached_samples_per_second": uncached,
            "cached_samples_per_second": cached,
            "cached_over_uncached": cached / uncached,
        },
        "concurrent_fusion": fusion,
        "concurrent_fusion_sync": fusion_sync,
        "overload": overload,
        "async_shard_scaling": async_shard,
    }


def _format_summary_lines(sections: dict) -> str:
    cache = sections["cache"]
    lines = [
        f"cold load: {sections['cold_load']['seconds'] * 1e3:.1f} ms, "
        f"uncached encode: {cache['uncached_samples_per_second']:,.0f} samples/s, "
        f"cached encode: {cache['cached_samples_per_second']:,.0f} samples/s "
        f"({cache['cached_over_uncached']:.0f}x)"
    ]
    for key, label in (
        ("concurrent_fusion", "concurrent fusion (pipelined)"),
        ("concurrent_fusion_sync", "concurrent fusion (sync)"),
    ):
        fusion = sections.get(key)
        if fusion is None:
            continue
        lines.append(
            f"{label} ({fusion['n_clients']} clients x "
            f"{fusion['requests_per_client']} x {fusion['rows_per_request']} rows, "
            f"depth {fusion['pipeline_depth']}): "
            f"unfused {fusion['unfused_samples_per_second']:,.0f} samples/s, "
            f"fused {fusion['fused_samples_per_second']:,.0f} samples/s "
            f"({fusion['fused_over_unfused']:.2f}x, fusion ratio "
            f"{fusion['fusion_ratio']:.1f}, bit_identical={fusion['bit_identical']})"
        )
    overload = sections.get("overload")
    if overload is not None:
        lines.append(
            f"overload ({overload['n_clients']} clients vs "
            f"{overload['max_in_flight']} slots): "
            f"shed 503 in {overload['shed_latency_ms']:.2f} ms vs "
            f"{overload['accepted_latency_ms']:.2f} ms accepted, "
            f"flood shed fraction {overload['flood_shed_fraction']:.0%}, "
            f"accepted {overload['accepted_requests_per_second']:,.0f} req/s"
        )
    shard = sections.get("async_shard_scaling")
    if shard is not None:
        per_worker = ", ".join(
            f"{entry['n_workers']}w {entry['requests_per_second']:,.0f} req/s"
            for entry in shard["scaling"]
        )
        lines.append(
            f"async+shard ({shard['n_connections']} connections x "
            f"{shard['requests_per_connection']} x "
            f"{shard['rows_per_request']} rows): {per_worker} "
            f"({shard['throughput_scaling']:.2f}x, "
            f"bit_identical={shard['bit_identical']})"
        )
    return "\n".join(lines)


def run_serving_benchmarks(*, smoke: bool = False) -> dict:
    """Every serving section; returns the ``BENCH_serving.json`` payload."""
    import repro

    with tempfile.TemporaryDirectory() as artifact_dir:
        framework, bundle, data = _make_serving_setup(artifact_dir, smoke=smoke)
        online_framework = None
        if not smoke:  # dedicated small model for the concurrency scenario
            online_framework, _, _ = _make_serving_setup(
                Path(artifact_dir) / "online", smoke=True
            )
        sections = _run_sections(
            framework, bundle, data, smoke=smoke, online_framework=online_framework
        )
    return {
        "benchmark": "serving",
        "repro_version": repro.__version__,
        "smoke": bool(smoke),
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "results": sections,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving benchmarks: cache win and concurrent batch fusion."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes so every section finishes in seconds")
    parser.add_argument("--out", default="BENCH_serving.json",
                        help="output JSON path (default: BENCH_serving.json)")
    args = parser.parse_args(argv)

    payload = run_serving_benchmarks(smoke=args.smoke)
    out = Path(args.out)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(_format_summary_lines(payload["results"]))
    emit(f"serving benchmark report written to {out}")
    for key in ("concurrent_fusion", "concurrent_fusion_sync",
                "async_shard_scaling"):
        if not payload["results"][key]["bit_identical"]:
            emit(f"ERROR: {key} fused results are not bit-identical to unfused")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
