"""Benchmarks of the persistence + serving subsystem.

Measures the three costs that matter for the train/serve split:

* **cold load** — rebuilding a fitted framework from its artifact bundle
  (what a serving replica pays at startup);
* **uncached encode** — a full preprocess + micro-batched forward pass;
* **cached encode** — the same request answered from the LRU feature cache.

The cached/uncached ratio is also emitted as a one-line summary so the cache
win is visible without reading the pytest-benchmark table.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_high_dimensional_mixture
from repro.persistence import load_framework, save_framework
from repro.serving import EncodingService


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """A fitted slsGRBM framework, its artifact bundle and an encode matrix."""
    data, _ = make_high_dimensional_mixture(
        600, 200, 3, separation=1.5, random_state=0
    )
    config = FrameworkConfig(
        model="sls_grbm",
        n_hidden=64,
        n_epochs=3,
        batch_size=64,
        random_state=0,
        extra={"supervision_learning_rate": 8e-3},
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=3)
    framework.fit(data)
    bundle = save_framework(
        framework, tmp_path_factory.mktemp("artifacts") / "sls_grbm"
    )
    return framework, bundle, data


def bench_cold_load(benchmark, serving_setup):
    """Artifact bundle -> ready-to-serve framework (manifest, checksum, npz)."""
    _, bundle, _ = serving_setup
    benchmark(load_framework, bundle)


def bench_encode_uncached(benchmark, serving_setup):
    """600 x 200 encode with the cache bypassed (full forward pass)."""
    _, bundle, data = serving_setup
    service = EncodingService(max_batch_size=256)
    service.load("m", bundle)
    benchmark(service.encode, "m", data, use_cache=False)


def bench_encode_cached(benchmark, serving_setup):
    """The same encode answered from the LRU feature cache."""
    _, bundle, data = serving_setup
    service = EncodingService(max_batch_size=256)
    service.load("m", bundle)
    service.warm("m", data)
    benchmark(service.encode, "m", data)


def bench_serving_summary(serving_setup):
    """One-line summary: cold-load time and cached vs uncached throughput."""
    _, bundle, data = serving_setup

    start = time.perf_counter()
    load_framework(bundle)
    cold_load_ms = (time.perf_counter() - start) * 1e3

    service = EncodingService(max_batch_size=256)
    service.load("m", bundle)
    rounds = 20
    start = time.perf_counter()
    for _ in range(rounds):
        service.encode("m", data, use_cache=False)
    uncached = rounds * data.shape[0] / (time.perf_counter() - start)

    service.warm("m", data)
    start = time.perf_counter()
    for _ in range(rounds):
        service.encode("m", data)
    cached = rounds * data.shape[0] / (time.perf_counter() - start)

    emit(
        f"\n================ serving ================\n"
        f"cold load: {cold_load_ms:.1f} ms, "
        f"uncached encode: {uncached:,.0f} samples/s, "
        f"cached encode: {cached:,.0f} samples/s "
        f"({cached / uncached:.0f}x)"
    )
    assert cached > uncached
