"""Table VIII: Rand index on datasets II (UCI analogues)."""

from __future__ import annotations

from conftest import print_full_table, print_paper_comparison
from repro.experiments.expected import PAPER_TABLE_VIII_RAND_AVERAGES


def bench_table_viii_rand(benchmark, datasets2_table):
    """Rand-index rows of Table VIII plus paper-vs-measured averages."""
    table = datasets2_table
    rows = benchmark(lambda: table.rows("rand"))
    assert rows[-1]["dataset"] == "Average"

    print_full_table(table, "rand", "Table VIII (measured): Rand index, datasets II")
    print_paper_comparison(
        "Table VIII averages: Rand index, datasets II",
        table.column_averages("rand"),
        PAPER_TABLE_VIII_RAND_AVERAGES,
    )
