"""Figure 9: average accuracy / Rand index / FMI per algorithm on datasets II."""

from __future__ import annotations

from conftest import emit
from repro.experiments.figures import figure_average_bars
from repro.experiments.reporting import format_summary_table


def bench_fig9_averages(benchmark, datasets2_table):
    """Bar heights of Fig. 9 (per-algorithm averages over datasets II)."""
    table = datasets2_table
    bars = benchmark(
        lambda: figure_average_bars(table, ("accuracy", "rand", "fmi"))
    )
    assert set(bars) == {"accuracy", "rand", "fmi"}
    emit()
    emit(
        format_summary_table(
            bars, title="Fig. 9 (measured): per-algorithm averages, datasets II"
        )
    )
