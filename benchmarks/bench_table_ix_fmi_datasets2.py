"""Table IX: Fowlkes-Mallows index on datasets II (UCI analogues)."""

from __future__ import annotations

from conftest import print_full_table, print_paper_comparison
from repro.experiments.expected import PAPER_TABLE_IX_FMI_AVERAGES


def bench_table_ix_fmi(benchmark, datasets2_table):
    """FMI rows of Table IX plus paper-vs-measured averages."""
    table = datasets2_table
    rows = benchmark(lambda: table.rows("fmi"))
    assert rows[-1]["dataset"] == "Average"

    print_full_table(table, "fmi", "Table IX (measured): FMI, datasets II")
    print_paper_comparison(
        "Table IX averages: FMI, datasets II",
        table.column_averages("fmi"),
        PAPER_TABLE_IX_FMI_AVERAGES,
    )
