"""Table VII: clustering accuracy on datasets II (UCI analogues)."""

from __future__ import annotations

from conftest import print_full_table, print_paper_comparison
from repro.experiments.expected import PAPER_TABLE_VII_ACCURACY, paper_average


def bench_table_vii_accuracy(benchmark, datasets2_table):
    """Accuracy rows of Table VII plus paper-vs-measured averages."""
    table = datasets2_table
    rows = benchmark(lambda: table.rows("accuracy"))
    assert rows[-1]["dataset"] == "Average"

    print_full_table(table, "accuracy", "Table VII (measured): accuracy, datasets II")
    print_paper_comparison(
        "Table VII averages: accuracy, datasets II",
        table.column_averages("accuracy"),
        paper_average(PAPER_TABLE_VII_ACCURACY),
    )
