"""Figures 6-8: per-dataset metric series on datasets II.

Three panels per figure (DP / K-means / AP), three lines per panel (raw,
+RBM, +slsRBM), for accuracy (Fig. 6), Rand index (Fig. 7) and FMI (Fig. 8).
"""

from __future__ import annotations

from conftest import emit
from repro.experiments.figures import figure_series

_FIGURES = (("accuracy", "Fig. 6"), ("rand", "Fig. 7"), ("fmi", "Fig. 8"))


def _print_series(table, metric, figure_name):
    panels = figure_series(table, metric, model_suffix="RBM")
    emit(f"\n================ {figure_name}: {metric} per dataset (datasets II) ================")
    emit("datasets:", ", ".join(table.dataset_order))
    for base, series in panels.items():
        emit(f"-- panel {base}")
        for algorithm, values in series.items():
            formatted = "  ".join(f"{v:.4f}" for v in values)
            emit(f"   {algorithm:<16} {formatted}")


def bench_fig6_fig7_fig8_series(benchmark, datasets2_table):
    """Series data behind Figs. 6-8."""
    table = datasets2_table

    def extract():
        return {
            metric: figure_series(table, metric, model_suffix="RBM")
            for metric, _ in _FIGURES
        }

    panels = benchmark(extract)
    assert set(panels) == {"accuracy", "rand", "fmi"}

    for metric, figure_name in _FIGURES:
        _print_series(table, metric, figure_name)
