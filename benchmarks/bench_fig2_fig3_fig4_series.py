"""Figures 2-4: per-dataset metric series on datasets I.

Each figure has three panels (one per base clusterer DP / K-means / AP) and
three lines per panel (raw, +GRBM, +slsGRBM); this bench prints those series
for accuracy (Fig. 2), purity (Fig. 3) and FMI (Fig. 4).
"""

from __future__ import annotations

from conftest import emit
from repro.experiments.figures import figure_series

_FIGURES = (("accuracy", "Fig. 2"), ("purity", "Fig. 3"), ("fmi", "Fig. 4"))


def _print_series(table, metric, figure_name):
    panels = figure_series(table, metric, model_suffix="GRBM")
    emit(f"\n================ {figure_name}: {metric} per dataset (datasets I) ================")
    emit("datasets:", ", ".join(table.dataset_order))
    for base, series in panels.items():
        emit(f"-- panel {base}")
        for algorithm, values in series.items():
            formatted = "  ".join(f"{v:.4f}" for v in values)
            emit(f"   {algorithm:<18} {formatted}")


def bench_fig2_fig3_fig4_series(benchmark, datasets1_table):
    """Series data behind Figs. 2-4."""
    table = datasets1_table

    def extract():
        return {
            metric: figure_series(table, metric, model_suffix="GRBM")
            for metric, _ in _FIGURES
        }

    panels = benchmark(extract)
    assert set(panels) == {"accuracy", "purity", "fmi"}

    for metric, figure_name in _FIGURES:
        _print_series(table, metric, figure_name)
