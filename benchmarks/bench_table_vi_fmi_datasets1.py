"""Table VI: Fowlkes-Mallows index on datasets I (MSRA-MM analogues)."""

from __future__ import annotations

from conftest import print_full_table, print_paper_comparison
from repro.experiments.expected import PAPER_TABLE_VI_FMI_AVERAGES


def bench_table_vi_fmi(benchmark, datasets1_table):
    """FMI rows of Table VI plus paper-vs-measured averages."""
    table = datasets1_table
    rows = benchmark(lambda: table.rows("fmi"))
    assert rows[-1]["dataset"] == "Average"

    print_full_table(table, "fmi", "Table VI (measured): FMI, datasets I")
    print_paper_comparison(
        "Table VI averages: FMI, datasets I",
        table.column_averages("fmi"),
        PAPER_TABLE_VI_FMI_AVERAGES,
    )
